package serve

import (
	"repro/internal/obs"
)

// This file owns the scheduler's metric registry: every family the
// /metrics endpoint exposes is registered here (or in registerFleet /
// the session manager), and a scrape-time collector copies one
// consistent Stats() snapshot into the collector-fed instruments.
// Registration happens eagerly in NewScheduler — WritePrometheus
// snapshots the family set before running collectors, so a family
// created lazily inside a collector would miss its first scrape.

// counterDef / gaugeDef bind an exposition family to its field in the
// Stats snapshot.
type counterDef struct {
	name, help string
	get        func(*Stats) int64
}

type gaugeDef struct {
	name, help string
	get        func(*Stats) float64
}

// registerMetrics registers the scheduler's families into s.obs and
// installs the collector that feeds them at scrape time. Store families
// are registered only when a store is configured, mirroring the
// conditional exposition the hand-rolled /metrics had.
func (s *Scheduler) registerMetrics() {
	counters := []counterDef{
		{"satserved_jobs_submitted_total", "accepted job submissions", func(st *Stats) int64 { return st.Submitted }},
		{"satserved_jobs_completed_total", "jobs finished with a result", func(st *Stats) int64 { return st.Completed }},
		{"satserved_jobs_failed_total", "jobs finished in error", func(st *Stats) int64 { return st.Failed }},
		{"satserved_jobs_cancelled_total", "jobs cancelled before a result", func(st *Stats) int64 { return st.Cancelled }},
		{"satserved_jobs_shed_total", "submissions rejected by load shedding", func(st *Stats) int64 { return st.Shed }},
		{"satserved_solves_total", "jobs that reached an engine", func(st *Stats) int64 { return st.Solves }},
		{"satserved_cache_hits_total", "jobs served from the result cache", func(st *Stats) int64 { return st.CacheHits }},
		{"satserved_coalesced_total", "jobs served by singleflight coalescing", func(st *Stats) int64 { return st.Coalesced }},
		{"satserved_cache_evictions_total", "results dropped by the LRU at capacity", func(st *Stats) int64 { return st.CacheEvictions }},
		{"satserved_proof_jobs_total", "decided certified jobs", func(st *Stats) int64 { return st.ProofJobs }},
		{"satserved_proof_replays_total", "certificates derived by replay solves", func(st *Stats) int64 { return st.ProofReplays }},
		{"satserved_proof_check_failures_total", "certificates rejected server-side", func(st *Stats) int64 { return st.ProofFailures }},
		{"satserved_audit_append_errors_total", "failed audit chain appends", func(st *Stats) int64 { return st.AuditAppendErrors }},
		{"satserved_sessions_opened_total", "sessions opened", func(st *Stats) int64 { return st.Sessions.Opened }},
		{"satserved_sessions_deleted_total", "sessions deleted", func(st *Stats) int64 { return st.Sessions.Deleted }},
		{"satserved_session_queries_total", "finished session queries", func(st *Stats) int64 { return st.Sessions.Queries }},
		{"satserved_session_evictions_total", "checkpoint-to-evict demotions", func(st *Stats) int64 { return st.Sessions.Evictions }},
		{"satserved_session_revivals_total", "checkpoint restores", func(st *Stats) int64 { return st.Sessions.Revivals }},
	}
	gauges := []gaugeDef{
		{"satserved_queue_depth", "jobs waiting in the backlog", func(st *Stats) float64 { return float64(st.QueueDepth) }},
		{"satserved_running", "jobs currently executing", func(st *Stats) float64 { return float64(st.Running) }},
		{"satserved_followers", "live coalesced waiters", func(st *Stats) float64 { return float64(st.Followers) }},
		{"satserved_workers_in_use", "granted portfolio workers", func(st *Stats) float64 { return float64(st.WorkersInUse) }},
		{"satserved_cache_entries", "result cache population", func(st *Stats) float64 { return float64(st.CacheEntries) }},
		{"satserved_audit_records", "audit chain length", func(st *Stats) float64 { return float64(st.AuditRecords) }},
		{"satserved_audit_chain_valid", "1 when the boot-time chain verification passed", func(st *Stats) float64 {
			if st.AuditChainValid {
				return 1
			}
			return 0
		}},
		{"satserved_sessions", "live sessions", func(st *Stats) float64 { return float64(st.Sessions.Sessions) }},
		{"satserved_sessions_resident", "sessions holding a live solver", func(st *Stats) float64 { return float64(st.Sessions.Resident) }},
		{"satserved_sessions_checkpointed", "sessions demoted to checkpoint images", func(st *Stats) float64 { return float64(st.Sessions.Checkpointed) }},
		{"satserved_session_checkpoint_bytes", "total checkpoint image bytes", func(st *Stats) float64 { return float64(st.Sessions.CheckpointBytes) }},
		{"satserved_session_busy", "session queries currently executing", func(st *Stats) float64 { return float64(st.SessionBusy) }},
	}
	if s.cfg.Store != nil {
		counters = append(counters,
			counterDef{"satserved_store_replay_skipped_total", "persisted records skipped during replay", func(st *Stats) int64 { return st.Store.ReplaySkipped }},
			counterDef{"satserved_store_writes_total", "write-behind records written", func(st *Stats) int64 { return st.Store.Writes }},
			counterDef{"satserved_store_dropped_total", "write-behind records dropped at capacity", func(st *Stats) int64 { return st.Store.Dropped }},
			counterDef{"satserved_store_errors_total", "store write errors", func(st *Stats) int64 { return st.Store.Errors }},
			counterDef{"satserved_store_compactions_total", "backend snapshot compactions", func(st *Stats) int64 { return st.Store.Backend.Compactions }},
			counterDef{"satserved_store_tail_truncations_total", "torn WAL tails truncated at open", func(st *Stats) int64 { return st.Store.Backend.TailTruncations }},
		)
		gauges = append(gauges,
			gaugeDef{"satserved_store_replayed_results", "cached results replayed at boot", func(st *Stats) float64 { return float64(st.Store.ReplayedResults) }},
			gaugeDef{"satserved_store_replayed_classes", "recipe classes replayed at boot", func(st *Stats) float64 { return float64(st.Store.ReplayedClasses) }},
			gaugeDef{"satserved_store_replayed_warm", "warm profiles replayed at boot", func(st *Stats) float64 { return float64(st.Store.ReplayedWarm) }},
			gaugeDef{"satserved_store_replay_seconds", "boot-time replay duration", func(st *Stats) float64 { return st.Store.Replay.Seconds() }},
			gaugeDef{"satserved_store_keys", "backend key count", func(st *Stats) float64 { return float64(st.Store.Backend.Keys) }},
			gaugeDef{"satserved_store_wal_records", "backend WAL record count", func(st *Stats) float64 { return float64(st.Store.Backend.WALRecords) }},
			gaugeDef{"satserved_store_wal_bytes", "backend WAL byte size", func(st *Stats) float64 { return float64(st.Store.Backend.WALBytes) }},
			gaugeDef{"satserved_store_snapshot_records", "backend snapshot record count", func(st *Stats) float64 { return float64(st.Store.Backend.SnapshotRecords) }},
			gaugeDef{"satserved_store_backend_replay_seconds", "backend WAL replay duration", func(st *Stats) float64 { return st.Store.Backend.Replay.Seconds() }},
		)
	}
	cs := make([]*obs.Counter, len(counters))
	for i, d := range counters {
		cs[i] = s.obs.Counter(d.name, d.help)
	}
	gs := make([]*obs.Gauge, len(gauges))
	for i, d := range gauges {
		gs[i] = s.obs.Gauge(d.name, d.help)
	}
	// Pre-register the latency families too: a scrape before the first
	// finished job should still show them (empty histograms).
	s.obs.Histogram(jobSecondsName, jobSecondsHelp, nil, obs.L("kind", string(KindDIMACS)))
	s.obs.Histogram(phaseSecondsName, phaseSecondsHelp, nil, obs.L("phase", "solve"))
	s.obs.AddCollector(func() {
		st := s.Stats()
		for i, d := range counters {
			cs[i].Set(d.get(&st))
		}
		for i, d := range gauges {
			gs[i].Set(d.get(&st))
		}
	})
}

// Latency histogram family names, shared with the SLO harness (whose
// report keys phase distributions by the trace span names these
// histograms mirror).
const (
	jobSecondsName   = "satserved_job_seconds"
	jobSecondsHelp   = "end-to-end job latency by kind (submit entry to finalize)"
	phaseSecondsName = "satserved_job_phase_seconds"
	phaseSecondsHelp = "per-phase latency attribution from the job trace"
)

// observeJob feeds a finalized job's trace into the latency histograms:
// one end-to-end observation per kind (with the job ID as exemplar, so
// a tail bucket links to a fetchable trace), one observation per
// top-level phase. Called exactly once per job, from finalize.
func (s *Scheduler) observeJob(j *Job) {
	v := j.trace.Snapshot()
	s.obs.Histogram(jobSecondsName, jobSecondsHelp, nil,
		obs.L("kind", string(j.spec.Kind))).ObserveEx(float64(v.DurUS)/1e6, j.ID)
	for name, us := range v.PhaseTotals() {
		s.obs.Histogram(phaseSecondsName, phaseSecondsHelp, nil,
			obs.L("phase", name)).Observe(float64(us) / 1e6)
	}
}

// registerFleet registers the fleet-routing families and their
// collector. Called by Server.SetFleet before serving starts.
func (s *Scheduler) registerFleet(f *Fleet) {
	members := s.obs.Gauge("satserved_fleet_members", "replicas in the routing ring")
	forwards := s.obs.Counter("satserved_fleet_forwards_total", "submissions forwarded to the owning peer")
	forwardErrs := s.obs.Counter("satserved_fleet_forward_errors_total", "failed peer forwards")
	fallbacks := s.obs.Counter("satserved_fleet_local_fallbacks_total", "forwards served locally after peer failure")
	s.obs.AddCollector(func() {
		fst := f.Stats()
		members.Set(float64(fst.Members))
		forwards.Set(fst.Forwards)
		forwardErrs.Set(fst.ForwardErrors)
		fallbacks.Set(fst.LocalFallbacks)
	})
}
