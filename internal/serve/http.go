package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the HTTP/JSON front end over a Scheduler. Routes:
//
//	POST   /v1/jobs            submit (sync by default; "async": true
//	                           returns immediately with the job ID)
//	POST   /v1/jobs/batch      submit many small jobs; streams one
//	                           NDJSON result line per item
//	GET    /v1/jobs/{id}       status + result + live progress
//	DELETE /v1/jobs/{id}       cooperative cancel
//	GET    /v1/jobs/{id}/watch server-sent events: progress samples
//	                           while running, final view on completion
//	GET    /v1/jobs/{id}/trace span trace: lifecycle phases tiling the
//	                           job's wall time, solver CPU attribution
//	GET    /v1/jobs/{id}/proof certification block of a "proof": true
//	                           job (verdict, DRAT, checker outcome,
//	                           audit-chain position)
//	GET    /v1/audit/head      audit chain length + head hash
//	GET    /v1/audit/{seq}     one audit record + inclusion check
//	                           (chain recomputed from genesis)
//	GET    /healthz            liveness + occupancy
//	GET    /metrics            Prometheus text exposition (obs.Registry)
//
// EnablePprof additionally mounts /debug/pprof/ (off by default).
//
// A full queue answers 429 with a Retry-After hint; malformed specs
// answer 400.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	// fleet, when non-nil, routes submissions across replicas (see
	// fleet.go). Set with SetFleet before serving.
	fleet *Fleet
	// watchPeriod is the SSE sampling period (test hook; 0 = 250ms).
	watchPeriod time.Duration
	// batchFlushWait is the batch streaming flush interval (test hook;
	// 0 = 200ms). See batch.go.
	batchFlushWait time.Duration
}

// NewServer wraps sched in the HTTP API.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/proof", s.handleProof)
	s.mux.HandleFunc("GET /v1/audit/head", s.handleAuditHead)
	s.mux.HandleFunc("GET /v1/audit/{seq}", s.handleAuditGet)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleSessionQuery)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetFleet attaches the sharded-fleet routing layer (fleet.go). Call
// before the server starts accepting requests; a nil fleet (the
// default) serves every job locally.
func (s *Server) SetFleet(f *Fleet) {
	s.fleet = f
	if f != nil {
		s.sched.registerFleet(f)
	}
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
// Off by default — profiling endpoints expose memory contents and cost
// CPU, so satserved gates them behind its -pprof flag.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// submitRequest is the POST /v1/jobs body: a Spec plus delivery mode.
type submitRequest struct {
	Spec
	// Async returns immediately after admission instead of waiting for
	// the result.
	Async bool `json:"async,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// maxRequestBytes bounds a submit body: big enough for multi-million
// clause DIMACS payloads, small enough that one request cannot OOM the
// long-lived service.
const maxRequestBytes = 64 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// Distinguishable from malformed JSON: the client should
			// shrink or split the payload, not fix its encoding.
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", maxRequestBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if s.routeSubmit(w, r, &req) {
		return // answered by the owning peer (see fleet.go)
	}
	job, err := s.sched.Submit(req.Spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrBadJob):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Async {
		// 202 means "still processing"; a job that is already terminal
		// (a cache hit finalizes before Submit returns) carries its
		// full result now and must say 200.
		switch job.Status() {
		case StatusQueued, StatusRunning:
			writeJSON(w, http.StatusAccepted, job.View())
		default:
			writeJSON(w, http.StatusOK, job.View())
		}
		return
	}
	// Sync delivery: wait under the client's connection context. A
	// dropped connection cancels the wait, not the job — an identical
	// resubmission will coalesce onto it. Any non-terminal state at
	// that point (queued OR still running) is a 202, never a 200: the
	// solve has not produced a result.
	_, waitErr := job.Wait(r.Context())
	st := job.Status()
	if waitErr != nil && (st == StatusQueued || st == StatusRunning) {
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	if errors.Is(waitErr, ErrQueueFull) {
		// A follower that lost its leader and found the queue full:
		// overload, and retryable — unlike a genuine failure.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, job.View())
		return
	}
	switch st {
	case StatusFailed:
		// The spec parsed but the engine rejected it (e.g. a CEC miter
		// over mismatched netlists): the request itself is at fault,
		// not the server.
		writeJSON(w, http.StatusUnprocessableEntity, job.View())
	case StatusCancelled:
		// Cancelled out from under the waiter (a concurrent DELETE or
		// scheduler shutdown): no verdict was produced, so a 2xx would
		// mislead clients gating on the status code.
		writeJSON(w, http.StatusConflict, job.View())
	default:
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.sched.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.sched.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	switch job.Status() {
	case StatusDone, StatusFailed, StatusCancelled:
		// Nothing is (or will be) cancelled; tell the client what the
		// job actually became instead of a phantom "cancelling".
		writeJSON(w, http.StatusConflict, job.View())
	default:
		job.Cancel()
		writeJSON(w, http.StatusOK, map[string]string{"id": job.ID, "cancelling": "true"})
	}
}

// handleWatch streams progress as server-sent events until the job
// finishes (or the client goes away). Each event is a full job View.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	job := s.sched.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	period := s.watchPeriod
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	terminal := func(st Status) bool {
		return st == StatusDone || st == StatusFailed || st == StatusCancelled
	}
	emit := func() Status {
		v := job.View()
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		return v.Status
	}
	// Every emit checks for a terminal view so the final state is
	// streamed exactly once — a job that finished before (or between)
	// samples must not produce a duplicate closing event.
	if terminal(emit()) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emit()
			return
		case <-ticker.C:
			if terminal(emit()) {
				return
			}
		}
	}
}

// handleTrace serves a job's span trace: top-level phases tiling the
// lifecycle (parse, queue, admit, solve, persist, respond — or
// coalesce_wait rounds), solver CPU-attribution children under the
// solve span, and the certification sub-span. Available while the job
// runs (open spans report dur_us -1) and after it finishes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job := s.sched.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	v, ok := job.TraceView()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("job carries no trace"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleProof serves a finished job's certification block. Still-active
// jobs answer 202 (come back later), terminal jobs without a result
// 409, and finished jobs that never asked for a proof 404 — the proof
// flag changes the cache keyspace, so it cannot be granted after the
// fact.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	job := s.sched.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	switch job.Status() {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	res, ok := job.Result()
	if !ok {
		writeJSON(w, http.StatusConflict, job.View())
		return
	}
	if res.Proof == nil {
		writeError(w, http.StatusNotFound,
			errors.New(`job carries no certificate (submit with "proof": true)`))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      job.ID,
		"kind":    res.Kind,
		"verdict": res.Verdict,
		"decided": res.Decided,
		"proof":   res.Proof,
	})
}

// handleAuditHead reports the audit chain's length, head hash and
// boot-time verification flag.
func (s *Server) handleAuditHead(w http.ResponseWriter, _ *http.Request) {
	seq, head, bootOK := s.sched.audit.headInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"records":             seq,
		"head":                head,
		"chain_valid_at_boot": bootOK,
	})
}

// handleAuditGet serves one audit record together with its inclusion
// check: the chain is recomputed from the genesis record up to the
// requested sequence number, so "chain_verified": true means the record
// is provably part of the prefix the current head commits to.
func (s *Server) handleAuditGet(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil || seq == 0 {
		writeError(w, http.StatusBadRequest, errors.New("bad audit sequence number"))
		return
	}
	rec, ok, err := s.sched.audit.verify(seq)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"record":         rec,
		"chain_verified": ok,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": st.QueueDepth,
		"running":     st.Running,
	})
}

// handleMetrics renders the scheduler's unified registry (obs.go):
// # HELP/# TYPE metadata, deterministic sorted order, latency
// histograms with trace-ID exemplars. Every family the hand-rolled
// predecessor printed is preserved name-for-name.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.sched.Obs().WritePrometheus(w)
}
