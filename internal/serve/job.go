package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"

	"repro/internal/bmc"
	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// Kind selects which engine a job runs.
type Kind string

// Supported job kinds.
const (
	// KindDIMACS solves a raw DIMACS CNF formula.
	KindDIMACS Kind = "dimacs"
	// KindCEC checks two combinational .bench circuits for equivalence
	// (miter UNSAT ⇔ equivalent).
	KindCEC Kind = "cec"
	// KindBMC bounded-model-checks a sequential .bench design up to a
	// depth (first declared output is the bad signal, latches reset 0).
	KindBMC Kind = "bmc"
)

// singleThreaded reports whether the kind's engine can only ever use
// one worker; the fair-share scheduler accounts such jobs as one CPU
// instead of a full portfolio share.
func (k Kind) singleThreaded() bool { return k == KindBMC }

// payloadSize is the total byte size of the spec's engine inputs — the
// cost driver of parsing and fingerprinting.
func (sp *Spec) payloadSize() int {
	return len(sp.DIMACS) + len(sp.Left) + len(sp.Right) + len(sp.Model)
}

// Spec is the typed job envelope a client submits. Exactly the fields
// of its Kind must be populated; the rest are common knobs.
type Spec struct {
	Kind Kind `json:"kind"`

	// DIMACS is the CNF text for KindDIMACS.
	DIMACS string `json:"dimacs,omitempty"`
	// Left / Right are the two .bench netlists for KindCEC.
	Left  string `json:"left,omitempty"`
	Right string `json:"right,omitempty"`
	// Model is the sequential .bench netlist for KindBMC; Depth is the
	// inclusive unrolling bound.
	Model string `json:"model,omitempty"`
	Depth int    `json:"depth,omitempty"`

	// Workers requests a portfolio size. 0 asks for the scheduler's
	// current fair share; any request is clamped to that share, so one
	// giant job cannot starve the fleet.
	Workers int `json:"workers,omitempty"`
	// Adaptive opts the job's portfolio into adaptive scheduling
	// (kill/respawn of losing recipes). Meaningful with ≥ 2 workers.
	Adaptive bool `json:"adaptive,omitempty"`
	// MaxConflicts bounds each SAT query (0 = unlimited within the
	// deadline).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// TimeoutMS is the job deadline in milliseconds (0 = the
	// scheduler's default; always capped by the scheduler's maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses both the result cache and in-flight coalescing:
	// the job is always solved fresh and its result is not stored.
	NoCache bool `json:"no_cache,omitempty"`
	// Proof requests a certified result (KindDIMACS only): UNSAT
	// verdicts carry a DRAT refutation checked server-side by the
	// independent RUP checker, SAT verdicts a server-verified model, and
	// the verdict's digests are committed to the hash-chained audit log.
	// Proof jobs live in their own cache keyspace: they are never
	// satisfied from a proofless cached or persisted entry.
	Proof bool `json:"proof,omitempty"`
}

// parsedPayload is the decoded, validated form of a Spec's payload.
type parsedPayload struct {
	formula     *cnf.Formula     // KindDIMACS
	left, right *circuit.Circuit // KindCEC
	seq         *bmc.Sequential  // KindBMC
}

// jobKey is the cache / singleflight identity of a job: identical keys
// are guaranteed to produce identical decided verdicts.
type jobKey [sha256.Size]byte

// parse validates the payload and derives the job's instance-class
// label (the coarse bucket the cross-run recipe memory keys on). The
// cache key is computed separately by cacheKey — NoCache jobs never
// need one.
func (sp *Spec) parse() (parsedPayload, string, error) {
	var p parsedPayload
	if sp.Proof && sp.Kind != KindDIMACS {
		// CEC and BMC verdicts are derived from transformed formulas
		// (miters, unrollings); a DRAT stream would refute the encoding,
		// not the submitted artifact, so certification stops at DIMACS.
		return p, "", fmt.Errorf("%w: proof is only supported for %q jobs", ErrBadJob, KindDIMACS)
	}
	switch sp.Kind {
	case KindDIMACS:
		f, err := cnf.ParseDIMACSString(sp.DIMACS)
		if err != nil {
			return p, "", fmt.Errorf("%w: %v", ErrBadJob, err)
		}
		if f.NumClauses() == 0 && f.NumVars() == 0 {
			return p, "", fmt.Errorf("%w: empty formula", ErrBadJob)
		}
		p.formula = f
		return p, dimacsClass(f), nil

	case KindCEC:
		left, _, err := circuit.ParseBenchString(sp.Left)
		if err != nil {
			return p, "", fmt.Errorf("%w: left: %v", ErrBadJob, err)
		}
		right, _, err := circuit.ParseBenchString(sp.Right)
		if err != nil {
			return p, "", fmt.Errorf("%w: right: %v", ErrBadJob, err)
		}
		p.left, p.right = left, right
		return p, fmt.Sprintf("cec/g%d", logBucket(len(left.Nodes)+len(right.Nodes))), nil

	case KindBMC:
		if sp.Depth < 0 {
			return p, "", fmt.Errorf("%w: negative depth", ErrBadJob)
		}
		seq, err := bmc.FromBench(strings.NewReader(sp.Model))
		if err != nil {
			return p, "", fmt.Errorf("%w: %v", ErrBadJob, err)
		}
		if err := seq.Validate(); err != nil {
			return p, "", fmt.Errorf("%w: %v", ErrBadJob, err)
		}
		p.seq = seq
		// BMC runs the sequential incremental unroller — there is no
		// recipe diversity to remember — so it carries no instance
		// class.
		return p, "", nil
	}
	return p, "", fmt.Errorf("%w: unknown kind %q", ErrBadJob, sp.Kind)
}

// cacheKey derives the job's cache/singleflight identity from a parsed
// spec. It is only called for cacheable jobs: the DIMACS canonical
// fingerprint in particular costs a full clause sort + hash, which a
// NoCache submission must not pay.
func (sp *Spec) cacheKey(p parsedPayload) jobKey {
	var key jobKey
	h := sha256.New()
	switch sp.Kind {
	case KindDIMACS:
		// The canonical formula fingerprint makes syntactic variants
		// (clause order, literal order, comments) the same cache line.
		fp := cnf.FormulaFingerprint(p.formula)
		h.Write([]byte("dimacs\x00"))
		if sp.Proof {
			// Proof jobs get a disjoint keyspace: a certified submission
			// must never hit — or coalesce onto — a proofless entry for
			// the same formula, and vice versa a plain submission must
			// not pay for (or pin) the certificate payload.
			h.Write([]byte("proof\x00"))
		}
		h.Write(fp[:])
	case KindCEC:
		// Length-prefix the components: an in-band separator byte could
		// be forged inside a payload, letting two different (Left,
		// Right) pairs collide on one cache key.
		h.Write([]byte("cec\x00"))
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(sp.Left)))
		h.Write(n[:])
		h.Write([]byte(sp.Left))
		binary.LittleEndian.PutUint64(n[:], uint64(len(sp.Right)))
		h.Write(n[:])
		h.Write([]byte(sp.Right))
	case KindBMC:
		h.Write([]byte("bmc\x00"))
		var d [8]byte
		binary.LittleEndian.PutUint64(d[:], uint64(sp.Depth))
		h.Write(d[:])
		h.Write([]byte(sp.Model))
	}
	h.Sum(key[:0])
	return key
}

// dimacsClass buckets a formula into the coarse instance class the
// recipe memory keys on: variable-count magnitude and clause/variable
// density. Two formulas in the same class are expected to favor the
// same recipe family (the IB-Net observation: winning setups are
// instance-class dependent).
func dimacsClass(f *cnf.Formula) string {
	nv := f.NumVars()
	if nv == 0 {
		nv = 1
	}
	ratio := (10*f.NumClauses() + nv/2) / nv // clause density ×10, rounded
	return fmt.Sprintf("dimacs/v%d/r%d", logBucket(nv), ratio)
}

func logBucket(n int) int {
	if n < 1 {
		n = 1
	}
	return bits.Len(uint(n))
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Result is the outcome of a finished job. Results returned by the
// scheduler are value copies: the caller owns every field.
type Result struct {
	Kind Kind `json:"kind"`
	// Verdict is the engine answer: SAT / UNSAT for DIMACS,
	// EQUIVALENT / NOT_EQUIVALENT for CEC, VIOLATED / SAFE for BMC,
	// UNKNOWN when a budget or deadline expired first.
	Verdict string `json:"verdict"`
	// Decided is false only for UNKNOWN verdicts.
	Decided bool `json:"decided"`
	// Model is a satisfying assignment in DIMACS literal form (DIMACS
	// kind, SAT verdict).
	Model []int `json:"model,omitempty"`
	// Counterexample is a distinguishing input vector (CEC kind,
	// NOT_EQUIVALENT verdict), ordered like the left circuit's inputs.
	Counterexample []bool `json:"counterexample,omitempty"`
	// Depth is the first violating frame (BMC kind, VIOLATED verdict).
	// Not omitempty: depth 0 — the initial state already bad — is a
	// legal violating depth and must serialize.
	Depth int `json:"depth"`
	// Recipe is the winning portfolio recipe ("" when a sequential
	// engine answered).
	Recipe string `json:"recipe,omitempty"`
	// Preferred echoes the recipe family the cross-run memory seeded
	// this run with ("" = no hint).
	Preferred string `json:"preferred,omitempty"`
	// Conflicts aggregates conflicts across the engines that ran.
	Conflicts int64 `json:"conflicts"`
	// Workers is the portfolio size the scheduler granted.
	Workers int `json:"workers"`
	// Cached marks a result served from the result cache; Coalesced
	// marks one inherited from an identical in-flight job.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// WallMS is the solve wall time in milliseconds (0 for cache hits).
	WallMS int64 `json:"wall_ms"`
	// Proof is the certification block of a Spec.Proof job (nil
	// otherwise, and for undecided proof jobs' UNKNOWN results).
	Proof *ProofInfo `json:"proof,omitempty"`

	// warm is the deciding solver's branching warm-start profile,
	// harvested for the scheduler's cross-run recipe memory (which
	// replays it into the next same-class solve). Unexported: it is
	// service-internal heuristic state, not part of the client result.
	warm []solver.WarmVar
}

// clone deep-copies the result, including the slice-valued fields, so
// the original and the copy share no state (the "caller owns every
// field" contract).
func (r Result) clone() Result {
	out := r
	out.Model = append([]int(nil), r.Model...)
	out.Counterexample = append([]bool(nil), r.Counterexample...)
	out.warm = append([]solver.WarmVar(nil), r.warm...)
	if r.Proof != nil {
		// ProofInfo holds only value fields (strings are immutable), so
		// a shallow copy of the struct severs all sharing.
		p := *r.Proof
		out.Proof = &p
	}
	return out
}

// ProofInfo is the certification block attached to a Result when the
// job requested a proof (Spec.Proof).
type ProofInfo struct {
	// Checker is the server-side verification outcome: "verified" (an
	// UNSAT job's DRAT stream passed the independent incremental RUP
	// checker, resp. a SAT job's model satisfied every clause),
	// "truncated" (the stream outgrew the capture bound and was
	// discarded), "unavailable" (no certificate could be derived within
	// the job's budget), or "failed: ..." (a certificate was produced
	// but rejected — do not treat the verdict as certified).
	Checker string `json:"checker"`
	// DRAT is the refutation in textual DRAT format, deletion lines
	// included. Present only for UNSAT verdicts whose stream verified.
	DRAT string `json:"drat,omitempty"`
	// Deletions counts the "d" lines in DRAT.
	Deletions int `json:"deletions,omitempty"`
	// Replayed marks a certificate re-derived by the bounded replay
	// solve: the racing portfolio's winner was not the proof worker, so
	// a sequential proof-logging solve ran after the verdict.
	Replayed bool `json:"replayed,omitempty"`
	// Truncated marks a stream that outgrew the capture bound.
	Truncated bool `json:"truncated,omitempty"`
	// ResultDigest is the hex SHA-256 over the canonical verdict (kind,
	// verdict, model); ProofDigest the same over the DRAT text. Both are
	// committed to the hash-chained audit log.
	ResultDigest string `json:"result_digest,omitempty"`
	ProofDigest  string `json:"proof_digest,omitempty"`
	// AuditSeq / AuditHash locate the verdict's record in the audit
	// chain (sequence numbers start at 1; 0 = not recorded).
	AuditSeq  uint64 `json:"audit_seq,omitempty"`
	AuditHash string `json:"audit_hash,omitempty"`
}

// Job is one submitted work item. All exported access is through
// methods; a Job is safe for concurrent use.
type Job struct {
	// ID is the scheduler-assigned identity ("j1", "j2", …).
	ID string

	spec   Spec
	parsed parsedPayload
	key    jobKey
	class  string

	ctx    context.Context
	cancel context.CancelFunc
	mon    *portfolio.Monitor
	done   chan struct{}

	// trace records the job's lifecycle spans, anchored at the Submit
	// entry instant (before parsing) so every microsecond of the job's
	// wall time is attributable. Top-level phases TILE the trace — each
	// starts where the previous ended — so their durations sum to the
	// root duration by construction. traceOnce guards the one-time
	// closing sequence in finalize; certifyDur is written only by the
	// executor goroutine inside execute.
	trace      *obs.Trace
	traceOnce  sync.Once
	certifyDur time.Duration

	mu        sync.Mutex
	status    Status
	result    *Result
	err       error
	submitted time.Time
	started   time.Time
	workers   int
	preferred string
	// phaseUS is the trace offset where the last closed top-level phase
	// ended — the start of the next tile.
	phaseUS int64
}

// phase closes the current top-level phase at now: the recorded span
// covers [previous boundary, now) under the root, and the boundary
// advances. Returns the span ID (0 when the job carries no trace).
func (j *Job) phase(name string, attrs ...obs.Attr) int {
	if j.trace == nil {
		return 0
	}
	now := time.Since(j.trace.Start()).Microseconds()
	j.mu.Lock()
	last := j.phaseUS
	if now < last {
		now = last
	}
	j.phaseUS = now
	j.mu.Unlock()
	return j.trace.AddOffset(obs.RootSpan, name, last, now-last, attrs...)
}

// phaseOffset reads the current tile boundary.
func (j *Job) phaseOffset() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.phaseUS
}

// TraceView snapshots the job's span trace for serialization.
func (j *Job) TraceView() (obs.View, bool) {
	if j.trace == nil {
		return obs.View{}, false
	}
	return j.trace.Snapshot(), true
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation: a queued job is dropped
// when an executor reaches it, a running job's solvers are interrupted.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes or ctx expires, returning the
// result copy (or the job error).
func (j *Job) Wait(ctx context.Context) (Result, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return Result{}, j.err
	}
	return j.result.clone(), nil
}

// Result returns the finished job's result copy and true, or false
// while the job is still queued or running (and for failed jobs).
func (j *Job) Result() (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return Result{}, false
	}
	return j.result.clone(), true
}

// setRunning transitions queued → running.
func (j *Job) setRunning(workers int, preferred string) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.workers = workers
	j.preferred = preferred
	j.mu.Unlock()
}

// finish transitions to a terminal state exactly once.
func (j *Job) finish(st Status, res *Result, err error) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.result = res
	j.err = err
	// The payload was only needed to solve; finished jobs sit in the
	// retention registry for status-by-ID lookups, which must not pin
	// multi-MB formulas and netlist texts.
	j.parsed = parsedPayload{}
	j.spec.DIMACS, j.spec.Left, j.spec.Right, j.spec.Model = "", "", "", ""
	j.mu.Unlock()
	j.cancel() // release the ctx watcher resources
	close(j.done)
}

// ProgressView is a live sample of a running job, derived from the
// job's portfolio.Monitor.
type ProgressView struct {
	// Conflicts sums the live workers; ConflictsPerSec rates them over
	// the job's running time.
	Conflicts       int64   `json:"conflicts"`
	ConflictsPerSec float64 `json:"conflicts_per_sec"`
	// GlueShare is the conflict-weighted share of glue (LBD ≤ 3)
	// clauses across live workers.
	GlueShare float64 `json:"glue_share"`
	// Workers lists each live solver's recipe and counters.
	Workers []WorkerView `json:"workers,omitempty"`
	// Kills / Respawns mirror the adaptive supervisor so far; Events
	// is its bounded kill/respawn history, oldest first.
	Kills    int      `json:"kills"`
	Respawns int      `json:"respawns"`
	Events   []string `json:"events,omitempty"`
}

// WorkerView is one live worker inside a ProgressView.
type WorkerView struct {
	Slot      int     `json:"slot"`
	Gen       int     `json:"gen"`
	Recipe    string  `json:"recipe"`
	AgeMS     int64   `json:"age_ms"`
	Conflicts int64   `json:"conflicts"`
	Restarts  int64   `json:"restarts"`
	GlueShare float64 `json:"glue_share"`
}

// Progress samples the running job. It returns nil unless the job is
// currently running.
func (j *Job) Progress() *ProgressView {
	j.mu.Lock()
	if j.status != StatusRunning {
		j.mu.Unlock()
		return nil
	}
	started := j.started
	j.mu.Unlock()

	snap := j.mon.Snapshot()
	pv := &ProgressView{Kills: snap.Kills, Respawns: snap.Respawns, Events: snap.Events}
	// Start from the retired workers' final counts so the total stays
	// monotonic across adaptive kills/respawns.
	pv.Conflicts = snap.RetiredConflicts
	var glueWeighted, liveConflicts float64
	for _, w := range snap.Live {
		pv.Conflicts += w.Conflicts
		liveConflicts += float64(w.Conflicts)
		glueWeighted += w.GlueShare * float64(w.Conflicts)
		pv.Workers = append(pv.Workers, WorkerView{
			Slot: w.Slot, Gen: w.Gen, Recipe: w.Label,
			AgeMS:     w.Age.Milliseconds(),
			Conflicts: w.Conflicts, Restarts: w.Restarts,
			GlueShare: w.GlueShare,
		})
	}
	if liveConflicts > 0 {
		// Glue quality is a live-worker signal; retired counts carry no
		// histogram and must not dilute it.
		pv.GlueShare = glueWeighted / liveConflicts
	}
	if dt := time.Since(started).Seconds(); dt > 0 {
		pv.ConflictsPerSec = float64(pv.Conflicts) / dt
	}
	return pv
}

// View is the JSON shape of a job for the HTTP API.
type View struct {
	ID        string        `json:"id"`
	Kind      Kind          `json:"kind"`
	Status    Status        `json:"status"`
	Workers   int           `json:"workers,omitempty"`
	Preferred string        `json:"preferred,omitempty"`
	Result    *Result       `json:"result,omitempty"`
	Error     string        `json:"error,omitempty"`
	Progress  *ProgressView `json:"progress,omitempty"`
}

// View snapshots the job for serialization, including a live progress
// sample when the job is running.
func (j *Job) View() View {
	prog := j.Progress() // outside j.mu: Progress takes it too
	j.mu.Lock()
	if j.status != StatusRunning {
		// The job may have finished between the Progress sample and
		// this lock; a terminal view must not carry a live progress
		// block (clients read its presence as "still running").
		prog = nil
	}
	v := View{
		ID: j.ID, Kind: j.spec.Kind, Status: j.status,
		Workers: j.workers, Preferred: j.preferred,
		Progress: prog,
	}
	if j.result != nil {
		r := j.result.clone()
		v.Result = &r
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	j.mu.Unlock()
	return v
}

// execute dispatches the job to its engine under rctx and maps the
// engine answer onto a Result. workers is the granted portfolio size,
// prefer the recipe-memory hint, warm the remembered branching
// warm-start profile for the job's instance class (nil = cold start).
func execute(rctx context.Context, j *Job, workers int, prefer string, warm []solver.WarmVar) (*Result, error) {
	res := &Result{Kind: j.spec.Kind, Workers: workers, Preferred: prefer}
	switch j.spec.Kind {
	case KindDIMACS:
		copts := core.Options{
			Solver:            solver.Options{MaxConflicts: j.spec.MaxConflicts, WarmStart: warm},
			PortfolioWorkers:  workers,
			PortfolioAdaptive: j.spec.Adaptive && workers > 1,
			PortfolioPrefer:   prefer,
			PortfolioMonitor:  j.mon,
		}
		var capture *proofCapture
		if j.spec.Proof {
			capture = newProofCapture()
			copts.Proof = capture.w
		}
		ans := core.SolveContext(rctx, j.parsed.formula, copts)
		res.warm = ans.Warm
		switch ans.Status {
		case solver.Sat:
			res.Verdict, res.Decided = "SAT", true
			res.Model = modelLits(j.parsed.formula, ans.Model)
		case solver.Unsat:
			res.Verdict, res.Decided = "UNSAT", true
		default:
			res.Verdict = "UNKNOWN"
		}
		if p := ans.Portfolio; p != nil {
			res.Recipe = p.Recipe
			for _, w := range p.Workers {
				res.Conflicts += w.Stats.Conflicts
			}
		} else if ans.SolverStats != nil {
			res.Conflicts = ans.SolverStats.Conflicts
		}
		if j.spec.Proof && res.Decided {
			certStart := time.Now()
			res.Proof = certifyDIMACS(rctx, j, res, ans, capture)
			j.certifyDur = time.Since(certStart)
		}
		return res, nil

	case KindCEC:
		cres, err := cec.CheckContext(rctx, j.parsed.left, j.parsed.right, cec.Options{
			MaxConflicts:      j.spec.MaxConflicts,
			PortfolioWorkers:  workers,
			PortfolioAdaptive: j.spec.Adaptive && workers > 1,
			Monitor:           j.mon,
			PreferRecipe:      prefer,
		})
		if err != nil {
			return nil, err
		}
		res.Conflicts = cres.Conflicts
		res.Recipe = cres.Recipe
		switch {
		case !cres.Decided:
			res.Verdict = "UNKNOWN"
		case cres.Equivalent:
			res.Verdict, res.Decided = "EQUIVALENT", true
		default:
			res.Verdict, res.Decided = "NOT_EQUIVALENT", true
			res.Counterexample = cres.Counterexample
		}
		return res, nil

	case KindBMC:
		bres := bmc.CheckContext(rctx, j.parsed.seq, j.spec.Depth, bmc.Options{
			MaxConflicts: j.spec.MaxConflicts,
			Monitor:      j.mon,
		})
		res.Conflicts = bres.Conflicts
		switch {
		case !bres.Decided:
			res.Verdict = "UNKNOWN"
		case bres.Violated:
			res.Verdict, res.Decided = "VIOLATED", true
			res.Depth = bres.Depth
		default:
			res.Verdict, res.Decided = "SAFE", true
		}
		return res, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrBadJob, j.spec.Kind)
}

// proofMaxBytes bounds the DRAT text captured per job (32 MiB). A
// stream past the bound is discarded and the certificate reported
// truncated; the verdict itself is unaffected.
const proofMaxBytes = 32 << 20

// minReplayConflicts is the floor of the replay solve's conflict
// budget: tiny instances decided in a handful of conflicts still
// deserve a real re-derivation attempt.
const minReplayConflicts = 100_000

// proofCapture collects a solve's DRAT stream into a bounded in-memory
// buffer. Writes past proofMaxBytes are discarded (never surfaced to
// the solver as an error) and the capture marked truncated.
type proofCapture struct {
	buf       bytes.Buffer
	truncated bool
	w         *solver.DRATWriter
}

func newProofCapture() *proofCapture {
	c := &proofCapture{}
	c.w = solver.NewDRATWriter(c)
	return c
}

// Write implements io.Writer for the DRATWriter underneath.
func (c *proofCapture) Write(p []byte) (int, error) {
	if !c.truncated {
		if c.buf.Len()+len(p) > proofMaxBytes {
			c.truncated = true
		} else {
			c.buf.Write(p)
		}
	}
	return len(p), nil
}

// text flushes and returns the captured DRAT stream.
func (c *proofCapture) text() string {
	_ = c.w.Flush() // the sink never errors
	return c.buf.String()
}

// certifyDIMACS builds a decided DIMACS result's certification block.
// SAT verdicts are certified by checking the model clause by clause;
// UNSAT verdicts by verifying a DRAT refutation with the independent
// incremental RUP checker — the main solve's stream when the designated
// proof worker's verdict was the one adopted (ans.Proved), otherwise a
// stream re-derived by a bounded sequential replay solve.
func certifyDIMACS(rctx context.Context, j *Job, res *Result, ans *core.Answer, capture *proofCapture) *ProofInfo {
	info := &ProofInfo{}
	if res.Verdict == "SAT" {
		if err := solver.VerifyModel(j.parsed.formula, ans.Model); err != nil {
			info.Checker = "failed: " + err.Error()
		} else {
			info.Checker = "verified"
		}
		info.ResultDigest = resultDigest(res)
		return info
	}
	drat, ok, disagreed := unsatCertificate(rctx, j, res, ans, capture, info)
	switch {
	case disagreed:
		info.Checker = "failed: replay solve contradicted the UNSAT verdict"
	case info.Truncated:
		info.Checker = "truncated"
	case !ok:
		info.Checker = "unavailable"
	default:
		// drat may legitimately be empty: a formula refuted by root-level
		// propagation alone needs no lemmas, and the checker's final
		// database-conflicts check certifies exactly that.
		if err := solver.VerifyDRAT(j.parsed.formula, strings.NewReader(drat)); err != nil {
			info.Checker = "failed: " + err.Error()
		} else {
			info.Checker = "verified"
			info.DRAT = drat
			info.Deletions = countDeletions(drat)
			sum := sha256.Sum256([]byte(drat))
			info.ProofDigest = hex.EncodeToString(sum[:])
		}
	}
	info.ResultDigest = resultDigest(res)
	return info
}

// unsatCertificate produces the DRAT text certifying an UNSAT verdict,
// filling info's Replayed/Truncated provenance flags. The replay path
// runs when the racing portfolio was decided by a non-proof worker: a
// bounded sequential proof-logging solve, off the race's hot path — the
// client-visible verdict latency was already paid; the replay only
// delays this one job's certificate.
func unsatCertificate(rctx context.Context, j *Job, res *Result, ans *core.Answer, capture *proofCapture, info *ProofInfo) (drat string, ok, disagreed bool) {
	if ans.Proved {
		if capture.truncated {
			info.Truncated = true
			return "", false, false
		}
		return capture.text(), true, false
	}
	info.Replayed = true
	budget := res.Conflicts * 4
	if budget < minReplayConflicts {
		budget = minReplayConflicts
	}
	if j.spec.MaxConflicts > 0 && j.spec.MaxConflicts < budget {
		budget = j.spec.MaxConflicts // the client's per-query bound still binds
	}
	replay := newProofCapture()
	rans := core.SolveContext(rctx, j.parsed.formula, core.Options{
		Solver: solver.Options{MaxConflicts: budget, WarmStart: res.warm},
		Proof:  replay.w,
	})
	switch {
	case rans.Status == solver.Sat:
		return "", false, true
	case rans.Status != solver.Unsat || !rans.Proved:
		return "", false, false // budget or deadline expired: no certificate
	case replay.truncated:
		info.Truncated = true
		return "", false, false
	}
	return replay.text(), true, false
}

// resultDigest canonically fingerprints the certified verdict — kind,
// verdict, model — independent of delivery metadata (timing, recipe,
// cache flags), so identical verdicts digest identically.
func resultDigest(res *Result) string {
	h := sha256.New()
	h.Write([]byte(res.Kind))
	h.Write([]byte{0})
	h.Write([]byte(res.Verdict))
	h.Write([]byte{0})
	var b [8]byte
	for _, l := range res.Model {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(l)))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// countDeletions counts the deletion lines of a DRAT stream.
func countDeletions(drat string) int {
	n := strings.Count(drat, "\nd ")
	if strings.HasPrefix(drat, "d ") {
		n++
	}
	return n
}

// modelLits renders a model as DIMACS literals over the formula's
// variables.
func modelLits(f *cnf.Formula, m cnf.Assignment) []int {
	out := make([]int, 0, f.NumVars())
	for v := cnf.Var(1); int(v) <= f.NumVars(); v++ {
		l := int(v)
		if m.Value(v) != cnf.True {
			l = -l
		}
		out = append(out, l)
	}
	return out
}
