package session

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func waitResult(t *testing.T, q *Query) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := q.Wait(ctx)
	if err != nil {
		t.Fatalf("query %s: %v", q.ID, err)
	}
	return res
}

// TestSessionQueryStream pins the basic contract: ordered assumption
// queries against one resident solver, verdicts matching fresh solvers.
func TestSessionQueryStream(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	f := gen.RandomKSAT(24, 90, 3, 5)
	ss, err := m.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if st := ss.State(); st != StateOpen {
		t.Fatalf("fresh session state: %v", st)
	}
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 15; q++ {
		v := cnf.Var(rng.Intn(24) + 1)
		assume := []cnf.Lit{cnf.NewLit(v, rng.Intn(2) == 0)}
		qq, err := ss.Submit(context.Background(), Request{Assume: assume})
		if err != nil {
			t.Fatal(err)
		}
		res := waitResult(t, qq)
		want := solver.FromFormula(f, solver.Options{}).Solve(assume...)
		if res.Status != want {
			t.Fatalf("query %d: session %v fresh %v", q, res.Status, want)
		}
		if res.Status == solver.Sat {
			if !res.Model.Satisfies(f) || res.Model.LitValue(assume[0]) != cnf.True {
				t.Fatalf("query %d: bad model", q)
			}
		}
		if res.Status == solver.Unsat && len(res.Core) == 0 {
			t.Fatalf("query %d: unsat under assumption with empty core", q)
		}
	}
	if got := ss.Info().Queries; got != 15 {
		t.Fatalf("served %d queries, want 15", got)
	}
	if st := m.Stats(); st.Queries != 15 || st.Resident != 1 {
		t.Fatalf("manager stats: %+v", st)
	}
}

// TestSessionAddClauses pins that query Adds persist: pinning a
// variable in one query constrains all later ones.
func TestSessionAddClauses(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	f := gen.XorChain(10, false, 2)
	ss, err := m.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := ss.Submit(context.Background(), Request{Add: []cnf.Clause{{cnf.PosLit(1)}}})
	if res := waitResult(t, q1); res.Status != solver.Sat {
		t.Fatalf("after pin +1: %v", res.Status)
	}
	q2, _ := ss.Submit(context.Background(), Request{Assume: []cnf.Lit{cnf.NegLit(1)}})
	if res := waitResult(t, q2); res.Status != solver.Unsat {
		t.Fatalf("assume -1 after pinned +1: %v", res.Status)
	}
}

// TestSessionCheckpointRevive forces an idle demotion and checks the
// revived session answers identically and the gauges move.
func TestSessionCheckpointRevive(t *testing.T) {
	m := NewManager(Config{IdleTTL: 50 * time.Millisecond, JanitorPeriod: 10 * time.Millisecond})
	defer m.Close()
	f := gen.RandomKSAT(20, 70, 3, 9)
	ss, err := m.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ss.Submit(context.Background(), Request{Assume: []cnf.Lit{cnf.PosLit(1)}})
	first := waitResult(t, q)

	deadline := time.Now().Add(5 * time.Second)
	for ss.State() != StateCheckpointed {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never checkpointed the idle session (state %v)", ss.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := m.Stats()
	if st.Checkpointed != 1 || st.Evictions == 0 || st.CheckpointBytes <= 0 {
		t.Fatalf("post-eviction stats: %+v", st)
	}

	q2, err := ss.Submit(context.Background(), Request{Assume: []cnf.Lit{cnf.PosLit(1)}})
	if err != nil {
		t.Fatal(err)
	}
	second := waitResult(t, q2)
	if second.Status != first.Status {
		t.Fatalf("revived verdict %v, resident verdict %v", second.Status, first.Status)
	}
	if ss.State() != StateResident {
		t.Fatalf("post-revival state: %v", ss.State())
	}
	if st := m.Stats(); st.Revivals == 0 {
		t.Fatalf("no revival counted: %+v", st)
	}
}

// TestSessionLRUBound opens more sessions than MaxResident and checks
// the oldest idle ones are demoted to checkpoints.
func TestSessionLRUBound(t *testing.T) {
	m := NewManager(Config{MaxResident: 2, IdleTTL: time.Hour})
	defer m.Close()
	var sessions []*Session
	for i := 0; i < 5; i++ {
		ss, err := m.Open(gen.RandomKSAT(15, 50, 3, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		q, _ := ss.Submit(context.Background(), Request{})
		waitResult(t, q)
		sessions = append(sessions, ss)
	}
	// Each Open (and each query) enforces the bound; after the last
	// query finishes at most MaxResident+1 can be live (the one that
	// just ran was exempt while busy).
	st := m.Stats()
	if st.Resident > 3 {
		t.Fatalf("resident %d over bound 2 (+1 in-flight exemption): %+v", st.Resident, st)
	}
	if st.Checkpointed == 0 {
		t.Fatalf("no LRU demotion happened: %+v", st)
	}
	// Every session still answers.
	for _, ss := range sessions {
		q, err := ss.Submit(context.Background(), Request{})
		if err != nil {
			t.Fatal(err)
		}
		waitResult(t, q)
	}
}

// TestSessionCancelMidQuery interrupts a hard query and checks the
// session survives to serve the next one.
func TestSessionCancelMidQuery(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	ss, err := m.Open(gen.Pigeonhole(10)) // hard enough to outlive the cancel
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q, err := ss.Submit(ctx, Request{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	res := waitResult(t, q)
	if res.Status == solver.Sat {
		t.Fatalf("php10 cannot be SAT: %+v", res)
	}
	if res.Status == solver.Unknown && !res.Cancelled {
		t.Fatalf("interrupted query not marked cancelled: %+v", res)
	}
	// The sticky interrupt must be cleared: the follow-up query runs its
	// (tiny) budget instead of returning instantly as cancelled.
	q2, _ := ss.Submit(context.Background(), Request{Assume: []cnf.Lit{cnf.PosLit(1)}, MaxConflicts: 50})
	res2 := waitResult(t, q2)
	if res2.Cancelled {
		t.Fatalf("next query inherited the interrupt: %+v", res2)
	}
	if res2.Status == solver.Unknown && res2.Conflicts == 0 {
		t.Fatalf("next query did no work: %+v", res2)
	}
}

// TestSessionDelete pins eviction semantics: pending queries finish as
// cancelled and later submits are refused.
func TestSessionDelete(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	ss, err := m.Open(gen.Pigeonhole(9))
	if err != nil {
		t.Fatal(err)
	}
	running, _ := ss.Submit(context.Background(), Request{})
	pending, _ := ss.Submit(context.Background(), Request{})
	time.Sleep(10 * time.Millisecond)
	if !m.Delete(ss.ID) {
		t.Fatal("delete reported unknown session")
	}
	if m.Delete(ss.ID) {
		t.Fatal("double delete reported success")
	}
	<-running.Done()
	if _, err := pending.Wait(context.Background()); err != ErrSessionClosed {
		t.Fatalf("pending query after delete: %v", err)
	}
	if _, err := ss.Submit(context.Background(), Request{}); err != ErrSessionClosed {
		t.Fatalf("submit after delete: %v", err)
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Fatalf("deleted session still counted: %+v", st)
	}
}

// countingGate checks the Gate contract: one acquire/release bracket
// per executed query.
type countingGate struct {
	mu                 sync.Mutex
	acquired, released int
	inUse, maxInUse    int
}

func (g *countingGate) Acquire() func() {
	g.mu.Lock()
	g.acquired++
	g.inUse++
	if g.inUse > g.maxInUse {
		g.maxInUse = g.inUse
	}
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.released++
			g.inUse--
			g.mu.Unlock()
		})
	}
}

func TestSessionGate(t *testing.T) {
	g := &countingGate{}
	m := NewManager(Config{Gate: g})
	defer m.Close()
	ss, err := m.Open(gen.RandomKSAT(15, 50, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q, _ := ss.Submit(context.Background(), Request{})
		waitResult(t, q)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.acquired != 5 || g.released != 5 || g.inUse != 0 {
		t.Fatalf("gate brackets: %+v", g)
	}
}

// TestSessionStress is the CI stress test: many goroutines hammering
// concurrent queries across sessions while eviction churns (tiny TTL,
// tiny resident bound) and a canceller kills queries mid-flight. Run
// under -race. Afterwards the manager closes and the goroutine count
// must return to baseline (leak check).
func TestSessionStress(t *testing.T) {
	baseline := runtime.NumGoroutine()

	m := NewManager(Config{
		MaxResident:   2,
		IdleTTL:       5 * time.Millisecond,
		JanitorPeriod: 2 * time.Millisecond,
		QueueDepth:    64,
	})
	const nSessions = 6
	var sessions []*Session
	for i := 0; i < nSessions; i++ {
		ss, err := m.Open(gen.RandomKSAT(30, 110, 3, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, ss)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30; i++ {
				ss := sessions[rng.Intn(nSessions)]
				ctx, cancel := context.WithCancel(context.Background())
				var assume []cnf.Lit
				if rng.Intn(2) == 0 {
					v := cnf.Var(rng.Intn(30) + 1)
					assume = []cnf.Lit{cnf.NewLit(v, rng.Intn(2) == 0)}
				}
				q, err := ss.Submit(ctx, Request{Assume: assume, MaxConflicts: 2000})
				if err != nil {
					cancel()
					continue // queue full under churn: fine
				}
				if rng.Intn(4) == 0 {
					cancel() // mid-query (or pre-start) cancel
				}
				ctxw, cancelw := context.WithTimeout(context.Background(), 30*time.Second)
				if _, err := q.Wait(ctxw); err != nil && err != ErrSessionClosed {
					t.Errorf("worker %d query %d: %v", w, i, err)
				}
				cancelw()
				cancel()
			}
		}(w)
	}
	// Eviction churn from the side: delete and reopen one session slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			time.Sleep(3 * time.Millisecond)
			ss, err := m.Open(gen.RandomKSAT(20, 70, 3, int64(100+i)))
			if err != nil {
				return
			}
			q, err := ss.Submit(context.Background(), Request{})
			if err == nil {
				ctxw, cancelw := context.WithTimeout(context.Background(), 30*time.Second)
				_, _ = q.Wait(ctxw)
				cancelw()
			}
			m.Delete(ss.ID)
		}
	}()
	wg.Wait()
	m.Close()

	// Leak check: all runners, janitor and watcher goroutines must be
	// gone. Allow slack for runtime background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := m.Stats()
	if st.Sessions != 0 || st.Resident != 0 || st.Checkpointed != 0 {
		t.Fatalf("sessions survived Close: %+v", st)
	}
	if st.Queries == 0 {
		t.Fatalf("stress served no queries: %+v", st)
	}
}

// TestManagerClosedOpen pins ErrClosed after Close.
func TestManagerClosedOpen(t *testing.T) {
	m := NewManager(Config{})
	m.Close()
	if _, err := m.Open(gen.RandomKSAT(5, 10, 3, 1)); err != ErrClosed {
		t.Fatalf("open after close: %v", err)
	}
}

// TestManagerRejectsUncheckpointable pins the Open-time option check.
func TestManagerRejectsUncheckpointable(t *testing.T) {
	m := NewManager(Config{Solver: solver.Options{LogProof: true}})
	defer m.Close()
	if _, err := m.Open(gen.RandomKSAT(5, 10, 3, 1)); err == nil {
		t.Fatal("LogProof session was accepted")
	}
}
