package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// Result is the outcome of one session query.
type Result struct {
	// Status is the solver verdict. Unknown with Cancelled set means the
	// query was interrupted (its context, the session closing), Unknown
	// without it that the conflict budget ran out.
	Status    solver.Status
	Cancelled bool
	// Model is the satisfying assignment (Sat only). The assumptions are
	// true in it.
	Model cnf.Assignment
	// Core is the refuting subset of the assumptions (Unsat under
	// assumptions only; empty when the formula itself is unsat).
	Core []cnf.Lit
	// Conflicts / Decisions are this query's own search effort (deltas,
	// not solver lifetime totals).
	Conflicts, Decisions int64
	// WallMS is the query's execution wall time (queue wait excluded).
	WallMS int64
}

// Query is one submitted session query. All exported access is through
// methods; a Query is safe for concurrent use.
type Query struct {
	// ID is "<session>.q<n>", unique within the manager.
	ID string

	ctx          context.Context
	assume       []cnf.Lit
	add          []cnf.Clause
	maxConflicts int64

	// mon observes the solver while this query executes; it is attached
	// for exactly the query's duration, so SSE watchers of one query see
	// only their own search.
	mon *portfolio.Monitor

	// submitted anchors the query's trace: the wait span covers
	// submission to execution start, the solve span the execution.
	submitted time.Time
	trace     *obs.Trace

	mu   sync.Mutex
	res  *Result
	err  error
	done chan struct{}
}

// Trace snapshots the query's span trace (queue wait, revive, solve).
func (q *Query) Trace() obs.View { return q.trace.Snapshot() }

// Done is closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// Monitor returns the query's progress monitor: attached while the
// query executes, sampleable at any time (empty before and after).
func (q *Query) Monitor() *portfolio.Monitor { return q.mon }

// Wait blocks until the query finishes or ctx expires, returning the
// result (or the query error).
func (q *Query) Wait(ctx context.Context) (Result, error) {
	select {
	case <-q.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return Result{}, q.err
	}
	return *q.res, nil
}

// Result returns the finished result and true, or false while pending.
func (q *Query) Result() (Result, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.res == nil {
		return Result{}, false
	}
	return *q.res, true
}

// finish resolves the query exactly once.
func (q *Query) finish(res *Result, err error) {
	q.mu.Lock()
	if q.res != nil || q.err != nil {
		q.mu.Unlock()
		return
	}
	q.res, q.err = res, err
	q.mu.Unlock()
	close(q.done)
}

// execute runs one query on the session's resident solver. Called only
// from the runner goroutine, which owns the solver while ss.busy holds;
// the session mutex is never held across the solve.
func (ss *Session) execute(q *Query) {
	if q.ctx != nil && q.ctx.Err() != nil {
		q.trace.Finish(obs.A("outcome", "cancelled_before_start"))
		q.finish(&Result{Status: solver.Unknown, Cancelled: true}, nil)
		return
	}

	ss.mu.Lock()
	if ss.state == StateEvicted {
		ss.mu.Unlock()
		q.trace.Finish(obs.A("outcome", "session_closed"))
		q.finish(nil, ErrSessionClosed)
		return
	}
	revived := false
	if ss.ckpt != nil {
		// Revive: the warm image becomes a live solver again.
		ss.s = ss.ckpt.Restore()
		ss.ckpt = nil
		ss.m.noteRevival()
		revived = true
	}
	ss.state = StateResident
	ss.busy = true
	s := ss.s
	ss.mu.Unlock()
	ss.m.enforceResident(ss)

	var release func()
	if g := ss.m.cfg.Gate; g != nil {
		release = g.Acquire()
	}

	// Cancellation: the query's context or the session closing interrupt
	// the solver; the sticky interrupt is cleared afterwards so the next
	// query runs unimpeded.
	qctx := q.ctx
	if qctx == nil {
		qctx = context.Background()
	}
	qctx, qcancel := context.WithCancel(qctx)
	go func() {
		select {
		case <-ss.quit:
			qcancel()
		case <-qctx.Done():
		}
	}()
	stopInterrupt := context.AfterFunc(qctx, s.Interrupt)

	detach := q.mon.Attach(0, 0, "session", s)
	start := time.Now()
	// The wait span covers submission through dequeue, revival included;
	// the solve span covers execution on the resident solver.
	q.trace.Add(obs.RootSpan, "wait", q.submitted, start.Sub(q.submitted))
	preStats := s.Stats

	res := &Result{Status: solver.Unsat}
	addsOK := true
	for _, cl := range q.add {
		if !s.AddClause(cl) {
			addsOK = false // formula now unsatisfiable at top level
			break
		}
	}
	if addsOK {
		s.SetBudget(q.maxConflicts, 0)
		res.Status = s.Solve(q.assume...)
		switch res.Status {
		case solver.Sat:
			res.Model = s.Model()
		case solver.Unsat:
			res.Core = s.Core()
		default:
			res.Cancelled = qctx.Err() != nil
		}
	}
	res.Conflicts = s.Stats.Conflicts - preStats.Conflicts
	res.Decisions = s.Stats.Decisions - preStats.Decisions
	res.WallMS = time.Since(start).Milliseconds()

	solveAttrs := []obs.Attr{
		obs.A("status", res.Status.String()),
		obs.A("conflicts", fmt.Sprint(res.Conflicts)),
	}
	if revived {
		solveAttrs = append(solveAttrs, obs.A("revived", "1"))
	}
	q.trace.Add(obs.RootSpan, "solve", start, time.Since(start), solveAttrs...)
	q.trace.Finish()
	if ss.m.obsWait != nil {
		ss.m.obsWait.ObserveEx(start.Sub(q.submitted).Seconds(), q.ID)
		ss.m.obsExec.ObserveEx(time.Since(start).Seconds(), q.ID)
	}

	stopInterrupt()
	qcancel()
	detach("")
	s.ClearInterrupt()
	if release != nil {
		release()
	}

	ss.mu.Lock()
	ss.busy = false
	ss.lastUsed = time.Now()
	ss.served++
	ss.numClauses += len(q.add)
	ss.mu.Unlock()
	ss.m.noteQuery()
	q.finish(res, nil)
}
