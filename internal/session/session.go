// Package session implements incremental solve sessions: resident
// formulas served by one warm solver each. A client (the serving layer,
// or an in-process consumer like the ATPG engine) opens a session by
// loading a formula once, then streams assumption-carrying queries
// against the resident solver — whose clause arena, learnt tiers,
// watcher pages and VSIDS/phase state stay warm between queries. This
// is the paper's iterative/incremental SAT usage (§6) turned into a
// service primitive: EDA loops (ATPG fault enumeration, BMC unrolling,
// CEC sweeping) are thousands of related queries over one formula, and
// the win concentrates in carrying the solver's learned state from one
// query to the next instead of re-deriving it.
//
// Lifecycle of a session (the state machine ARCHITECTURE.md documents):
//
//	open ──first query──► resident ◄──query (revive)── checkpointed
//	                         │                              ▲
//	                         └──idle TTL / LRU pressure─────┘
//	         any state ──Close / Manager shutdown──► evicted
//
// A session's queries execute on a dedicated runner goroutine, in
// submission order, each cancellable (before it starts or mid-solve via
// solver.Interrupt). Idle residents are demoted to a solver.Checkpoint
// image (checkpoint-to-evict): the solver's memory is released but the
// level-0 trail, learnt tiers and heuristic state survive, so a revived
// session warm-starts instead of re-solving. The Manager bounds live
// solvers (MaxResident) with LRU demotion and runs a janitor for the
// idle TTL.
//
// CPU accounting is delegated to a Gate: the serving layer passes one
// backed by its fair-share ledger, so running session queries debit the
// same budget portfolio jobs draw from.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// Session errors.
var (
	// ErrClosed is returned by Manager.Open after Close.
	ErrClosed = errors.New("session: manager closed")
	// ErrSessionClosed marks an operation on an evicted session.
	ErrSessionClosed = errors.New("session: session closed")
	// ErrQueueFull is load shedding on a session's query queue.
	ErrQueueFull = errors.New("session: query queue full")
)

// Gate meters session query execution against an external CPU ledger.
// Acquire is called before a query starts solving and blocks never; the
// returned release is called exactly once when the query finishes.
type Gate interface {
	Acquire() (release func())
}

// State is a session's lifecycle state.
type State string

// Session lifecycle states.
const (
	// StateOpen: created, no query executed yet (solver resident).
	StateOpen State = "open"
	// StateResident: live solver in memory, warm.
	StateResident State = "resident"
	// StateCheckpointed: solver demoted to its checkpoint image (idle
	// TTL or LRU pressure); the next query revives it.
	StateCheckpointed State = "checkpointed"
	// StateEvicted: terminal (deleted or manager shutdown).
	StateEvicted State = "evicted"
)

// Config sizes a Manager. The zero value is usable.
type Config struct {
	// MaxResident bounds the sessions holding a live solver; beyond it
	// the least-recently-used idle session is demoted to its checkpoint
	// (0 = 32). Busy sessions are never demoted, so the instantaneous
	// count can exceed the bound while queries are in flight.
	MaxResident int
	// IdleTTL is how long a session may sit idle before the janitor
	// demotes it to its checkpoint (0 = 2m).
	IdleTTL time.Duration
	// QueueDepth bounds each session's pending queries; a full queue
	// sheds with ErrQueueFull (0 = 16).
	QueueDepth int
	// JanitorPeriod is the idle-sweep interval (test hook; 0 = IdleTTL/4
	// clamped to [100ms, 15s]).
	JanitorPeriod time.Duration
	// Gate, when non-nil, meters query execution against an external
	// CPU ledger (the serving layer's fair share).
	Gate Gate
	// Obs, when non-nil, receives the manager's query latency
	// histograms (queue wait and execution, with query-ID exemplars).
	// Each query additionally carries its own span trace regardless.
	Obs *obs.Registry
	// Solver carries base solver options for new sessions. The
	// cooperation hooks and LogProof must be left unset (sessions
	// checkpoint, which those configurations cannot).
	Solver solver.Options
}

func (c Config) maxResident() int {
	if c.MaxResident > 0 {
		return c.MaxResident
	}
	return 32
}

func (c Config) idleTTL() time.Duration {
	if c.IdleTTL > 0 {
		return c.IdleTTL
	}
	return 2 * time.Minute
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 16
}

func (c Config) janitorPeriod() time.Duration {
	if c.JanitorPeriod > 0 {
		return c.JanitorPeriod
	}
	p := c.idleTTL() / 4
	if p < 100*time.Millisecond {
		p = 100 * time.Millisecond
	}
	if p > 15*time.Second {
		p = 15 * time.Second
	}
	return p
}

// Stats is a point-in-time snapshot of the manager.
type Stats struct {
	// Sessions counts live (non-evicted) sessions; Resident of them hold
	// a live solver, Checkpointed sit as images.
	Sessions, Resident, Checkpointed int
	// CheckpointBytes is the current total size of checkpoint images.
	CheckpointBytes int64
	// Opened / Deleted are lifetime counters.
	Opened, Deleted int64
	// Queries counts finished session queries; Evictions counts
	// checkpoint-to-evict demotions, Revivals checkpoint restores.
	Queries, Evictions, Revivals int64
}

// Manager owns the session registry, the resident-solver budget and the
// idle janitor. Create with NewManager, stop with Close.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	seq      int64
	sessions map[string]*Session

	opened, deleted, queries, evictions, revivals int64

	// obsWait / obsExec are the registered latency histograms (nil when
	// Config.Obs is nil).
	obsWait, obsExec *obs.Histogram

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewManager starts a manager (and its idle janitor).
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
	}
	if cfg.Obs != nil {
		m.obsWait = cfg.Obs.Histogram("session_query_wait_seconds",
			"session query queue wait (submit to execution start)", nil)
		m.obsExec = cfg.Obs.Histogram("session_query_solve_seconds",
			"session query execution time on the resident solver", nil)
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Open creates a session resident over f and returns it. The formula is
// loaded into a fresh solver once; every subsequent query reuses that
// solver's state. An optional warm profile (a cross-run memory's record
// of the variables that mattered on this instance class) seeds the
// resident solver's branching heuristic before its first query; the
// seed survives checkpoint/revive cycles — the activities carry it —
// and conflict bumps overrule it as the session accumulates its own
// heuristic state.
func (m *Manager) Open(f *cnf.Formula, warm ...solver.WarmVar) (*Session, error) {
	opts := m.cfg.Solver
	if opts.LogProof || opts.ExportClause != nil || opts.ImportClauses != nil {
		// Checkpointing strips or rejects these; refuse up front instead
		// of failing on the first idle demotion.
		return nil, errors.New("session: solver options incompatible with checkpointing")
	}
	if len(warm) > 0 {
		opts.WarmStart = warm
	}
	s := solver.FromFormula(f, opts)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.seq++
	m.opened++
	ss := &Session{
		ID:         fmt.Sprintf("s%d", m.seq),
		m:          m,
		state:      StateOpen,
		s:          s,
		numClauses: f.NumClauses(),
		lastUsed:   time.Now(),
		queue:      make(chan *Query, m.cfg.queueDepth()),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	m.sessions[ss.ID] = ss
	m.wg.Add(1)
	m.mu.Unlock()

	go ss.run()
	m.enforceResident(ss)
	return ss, nil
}

// Get returns the session with the given ID, or nil.
func (m *Manager) Get(id string) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[id]
}

// Delete closes and unregisters the session with the given ID; it
// reports whether the ID was known. In-flight queries are interrupted,
// pending ones finished as cancelled.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	ss, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.deleted++
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	ss.Close()
	return true
}

// Stats snapshots the manager's gauges and counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Opened: m.opened, Deleted: m.deleted,
		Queries: m.queries, Evictions: m.evictions, Revivals: m.revivals,
	}
	list := make([]*Session, 0, len(m.sessions))
	for _, ss := range m.sessions {
		list = append(list, ss)
	}
	m.mu.Unlock()
	for _, ss := range list {
		ss.mu.Lock()
		switch ss.state {
		case StateOpen, StateResident:
			st.Sessions++
			st.Resident++
		case StateCheckpointed:
			st.Sessions++
			st.Checkpointed++
			st.CheckpointBytes += int64(ss.ckpt.Bytes())
		}
		ss.mu.Unlock()
	}
	return st
}

// Close shuts the manager down: every session is closed (in-flight
// queries interrupted), the janitor stopped, and Close returns only
// after every runner goroutine has exited. Open afterwards returns
// ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	list := make([]*Session, 0, len(m.sessions))
	for id, ss := range m.sessions {
		list = append(list, ss)
		delete(m.sessions, id)
		m.deleted++
	}
	m.mu.Unlock()
	close(m.stop)
	for _, ss := range list {
		ss.Close()
	}
	m.wg.Wait()
}

// janitor periodically demotes idle resident sessions to checkpoints.
func (m *Manager) janitor() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.janitorPeriod())
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.sweep(time.Now())
		}
	}
}

// sweep demotes every resident session idle for longer than the TTL.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, ss := range m.sessions {
		list = append(list, ss)
	}
	m.mu.Unlock()
	ttl := m.cfg.idleTTL()
	for _, ss := range list {
		if ss.idleSince(now) >= ttl {
			ss.demote()
		}
	}
}

// enforceResident demotes least-recently-used idle sessions until the
// resident count fits the bound again. except (the session that just
// became resident) is never the victim: it is about to serve a query.
// Busy sessions are not demotable either, so the instantaneous count
// may stay over the bound while queries are in flight.
func (m *Manager) enforceResident(except *Session) {
	for {
		m.mu.Lock()
		list := make([]*Session, 0, len(m.sessions))
		for _, ss := range m.sessions {
			list = append(list, ss)
		}
		m.mu.Unlock()

		resident := 0
		var victim *Session
		var victimTime time.Time
		for _, ss := range list {
			st, idle, touched := ss.residentView()
			if st != StateOpen && st != StateResident {
				continue
			}
			resident++
			if ss == except || !idle {
				continue
			}
			if victim == nil || touched.Before(victimTime) {
				victim, victimTime = ss, touched
			}
		}
		if resident <= m.cfg.maxResident() || victim == nil {
			return
		}
		if !victim.demote() {
			return // raced with a new query; over-commit until the janitor
		}
	}
}

func (m *Manager) noteQuery() {
	m.mu.Lock()
	m.queries++
	m.mu.Unlock()
}

func (m *Manager) noteEviction() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

func (m *Manager) noteRevival() {
	m.mu.Lock()
	m.revivals++
	m.mu.Unlock()
}

// Session is one resident formula with its query stream. All exported
// access is through methods; a Session is safe for concurrent use.
type Session struct {
	// ID is the manager-assigned identity ("s1", "s2", …).
	ID string

	m *Manager

	mu         sync.Mutex
	state      State
	s          *solver.Solver     // non-nil while open/resident
	ckpt       *solver.Checkpoint // non-nil while checkpointed
	busy       bool               // the runner is executing a query
	lastUsed   time.Time
	numClauses int
	served     int64
	qseq       int64

	queue     chan *Query
	quit      chan struct{} // closed by Close: interrupts + drains
	closeOnce sync.Once
	done      chan struct{} // closed when the runner exits
}

// State returns the session's current lifecycle state.
func (ss *Session) State() State {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state
}

// Info is the session's serializable snapshot.
type Info struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Vars / Clauses describe the resident formula (clauses grow as
	// queries add).
	Vars    int `json:"vars"`
	Clauses int `json:"clauses"`
	// Queries counts finished queries; Pending the queued ones.
	Queries int64 `json:"queries"`
	Pending int   `json:"pending"`
	// CheckpointBytes is the image size while checkpointed (0 live).
	CheckpointBytes int `json:"checkpoint_bytes,omitempty"`
	// IdleMS is the time since the session was last touched.
	IdleMS int64 `json:"idle_ms"`
}

// Info snapshots the session.
func (ss *Session) Info() Info {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	in := Info{
		ID: ss.ID, State: ss.state,
		Clauses: ss.numClauses,
		Queries: ss.served, Pending: len(ss.queue),
		IdleMS: time.Since(ss.lastUsed).Milliseconds(),
	}
	switch {
	case ss.ckpt != nil:
		in.Vars = ss.ckpt.NumVars()
		in.CheckpointBytes = ss.ckpt.Bytes()
	case ss.s != nil && !ss.busy:
		in.Vars = ss.s.NumVars()
	}
	return in
}

// idleSince returns how long the session has been idle at now; busy or
// non-resident sessions report 0.
func (ss *Session) idleSince(now time.Time) time.Duration {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if (ss.state != StateOpen && ss.state != StateResident) || ss.busy || len(ss.queue) > 0 {
		return 0
	}
	return now.Sub(ss.lastUsed)
}

// residentView samples (state, demotable-idle, last-touched) under one
// lock acquisition, for the LRU enforcement scan.
func (ss *Session) residentView() (State, bool, time.Time) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	idle := !ss.busy && len(ss.queue) == 0
	return ss.state, idle, ss.lastUsed
}

// demote checkpoints an idle resident session, releasing its solver. It
// reports whether the demotion happened (false when the session is
// busy, already checkpointed, or evicted).
func (ss *Session) demote() bool {
	ss.mu.Lock()
	if (ss.state != StateOpen && ss.state != StateResident) || ss.busy || len(ss.queue) > 0 {
		ss.mu.Unlock()
		return false
	}
	ck, err := ss.s.Checkpoint()
	if err != nil {
		// Should be unreachable (Open rejects incompatible options);
		// keep the session resident rather than losing it.
		ss.mu.Unlock()
		return false
	}
	ss.ckpt = ck
	ss.s = nil
	ss.state = StateCheckpointed
	ss.mu.Unlock()
	ss.m.noteEviction()
	return true
}

// Close evicts the session: the in-flight query (if any) is
// interrupted, pending queries finish as cancelled, and the runner
// exits. Idempotent; does not unregister from the manager (Delete
// does).
func (ss *Session) Close() {
	ss.closeOnce.Do(func() {
		ss.mu.Lock()
		ss.state = StateEvicted
		ss.ckpt = nil
		ss.mu.Unlock()
		close(ss.quit)
	})
}

// Done is closed when the session's runner goroutine has exited.
func (ss *Session) Done() <-chan struct{} { return ss.done }

// Request is one assumption-carrying query against the session.
type Request struct {
	// Assume are the assumption literals the query solves under.
	Assume []cnf.Lit
	// Add are clauses added to the resident formula before solving (the
	// incremental pattern: guarded cones, retirement units). Adds are
	// permanent — they outlive the query.
	Add []cnf.Clause
	// MaxConflicts bounds this query's search (0 = unlimited).
	MaxConflicts int64
}

// Submit enqueues a query. It returns immediately; the query executes
// in submission order on the session's runner (Query.Wait blocks for
// the result). ctx cancels the query: before it starts, it finishes
// cancelled; mid-solve, the solver is interrupted. A full queue sheds
// with ErrQueueFull.
func (ss *Session) Submit(ctx context.Context, req Request) (*Query, error) {
	ss.mu.Lock()
	if ss.state == StateEvicted {
		ss.mu.Unlock()
		return nil, ErrSessionClosed
	}
	ss.qseq++
	submitted := time.Now()
	q := &Query{
		ID:           fmt.Sprintf("%s.q%d", ss.ID, ss.qseq),
		ctx:          ctx,
		assume:       append([]cnf.Lit(nil), req.Assume...),
		maxConflicts: req.MaxConflicts,
		mon:          portfolio.NewMonitor(),
		done:         make(chan struct{}),
		submitted:    submitted,
		trace:        obs.NewTraceAt("query", 0, submitted),
	}
	q.trace.Annotate(obs.RootSpan, obs.A("id", q.ID), obs.A("session", ss.ID))
	q.add = make([]cnf.Clause, 0, len(req.Add))
	for _, c := range req.Add {
		q.add = append(q.add, c.Clone())
	}
	select {
	case ss.queue <- q:
		ss.lastUsed = time.Now()
		ss.mu.Unlock()
		return q, nil
	default:
		ss.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// run is the session's runner goroutine: it executes queries in order
// until the session closes, then drains the queue as cancelled.
func (ss *Session) run() {
	defer ss.m.wg.Done()
	defer close(ss.done)
	for {
		select {
		case <-ss.quit:
			ss.mu.Lock()
			ss.s = nil
			ss.ckpt = nil
			ss.mu.Unlock()
			for {
				select {
				case q := <-ss.queue:
					q.trace.Finish(obs.A("outcome", "session_closed"))
					q.finish(nil, ErrSessionClosed)
				default:
					return
				}
			}
		case q := <-ss.queue:
			ss.execute(q)
		}
	}
}
