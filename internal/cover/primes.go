package cover

import "repro/internal/cnf"

// Implicant is a cube: a consistent set of literals.
type Implicant []cnf.Lit

// Implies reports whether the cube satisfies every clause of f (i.e. the
// cube is an implicant of the function f represents).
func (imp Implicant) Implies(f *cnf.Formula) bool {
	has := make(map[cnf.Lit]bool, len(imp))
	for _, l := range imp {
		has[l] = true
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if has[l] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// IsPrime reports whether no proper sub-cube of imp is still an
// implicant of f.
func (imp Implicant) IsPrime(f *cnf.Formula) bool {
	if !imp.Implies(f) {
		return false
	}
	for i := range imp {
		sub := make(Implicant, 0, len(imp)-1)
		sub = append(sub, imp[:i]...)
		sub = append(sub, imp[i+1:]...)
		if sub.Implies(f) {
			return false
		}
	}
	return true
}

// PrimeResult reports a minimum-size prime implicant computation.
type PrimeResult struct {
	// Found is false when f has no implicant (f is unsatisfiable).
	Found bool
	// Optimal is true when minimality was proven.
	Optimal   bool
	Implicant Implicant
	SATCalls  int
}

// MinPrimeImplicant computes a minimum-size prime implicant of the
// function represented by the CNF formula f, using the covering model of
// [Manquinho, Oliveira & Marques-Silva] (paper §3): selector variables
// y_l for every literal, constraints "every clause of f contains a
// selected literal" and "a variable is not selected in both polarities",
// minimizing the number of selected literals. A minimum-size implicant
// is necessarily prime.
func MinPrimeImplicant(f *cnf.Formula, opts Options) *PrimeResult {
	res := &PrimeResult{}
	n := f.NumVars()
	// Covering problem over 2n columns: column 2i = y_{x_{i+1}},
	// column 2i+1 = y_{¬x_{i+1}}.
	p := &Problem{NumCols: 2 * n}
	for _, c := range f.Clauses {
		row := make([]RowLit, len(c))
		for i, l := range c {
			col := 2 * (int(l.Var()) - 1)
			if l.IsNeg() {
				col++
			}
			row[i] = RowLit{Col: col}
		}
		p.Rows = append(p.Rows, row)
	}
	// Consistency: ¬(y_x ∧ y_¬x) — binate rows of negated literals.
	for v := 0; v < n; v++ {
		p.Rows = append(p.Rows, []RowLit{
			{Col: 2 * v, Neg: true},
			{Col: 2*v + 1, Neg: true},
		})
	}
	sol := SolveSAT(p, opts)
	res.SATCalls = sol.SATCalls
	if !sol.Feasible {
		return res
	}
	res.Found = true
	res.Optimal = sol.Optimal
	for v := 0; v < n; v++ {
		if sol.Select[2*v] {
			res.Implicant = append(res.Implicant, cnf.PosLit(cnf.Var(v+1)))
		}
		if sol.Select[2*v+1] {
			res.Implicant = append(res.Implicant, cnf.NegLit(cnf.Var(v+1)))
		}
	}
	return res
}

// AllPrimesBrute enumerates all prime implicants of f by brute force
// (test oracle; practical only for small formulas).
func AllPrimesBrute(f *cnf.Formula) []Implicant {
	n := f.NumVars()
	if n > 12 {
		panic("cover: AllPrimesBrute limited to 12 variables")
	}
	var primes []Implicant
	// Enumerate cubes as ternary vectors.
	var rec func(v int, cube Implicant)
	rec = func(v int, cube Implicant) {
		if v > n {
			c := make(Implicant, len(cube))
			copy(c, cube)
			if c.IsPrime(f) {
				primes = append(primes, c)
			}
			return
		}
		rec(v+1, cube)
		rec(v+1, append(cube, cnf.PosLit(cnf.Var(v))))
		rec(v+1, append(cube, cnf.NegLit(cnf.Var(v))))
	}
	rec(1, nil)
	return primes
}

// MinPrimeSizeBrute returns the size of the smallest prime implicant
// (oracle), or -1 if none exists.
func MinPrimeSizeBrute(f *cnf.Formula) int {
	primes := AllPrimesBrute(f)
	if len(primes) == 0 {
		return -1
	}
	min := 1 << 30
	for _, p := range primes {
		if len(p) < min {
			min = len(p)
		}
	}
	return min
}
