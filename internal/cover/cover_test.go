package cover

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func TestTotalizerCounts(t *testing.T) {
	// Exhaustively verify the totalizer over 5 inputs: for every input
	// assignment, out[i] must equal (popcount > i).
	for n := 1; n <= 4; n++ {
		f := cnf.New(n)
		lits := make([]cnf.Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = cnf.PosLit(cnf.Var(i + 1))
		}
		tot := BuildTotalizer(f, lits)
		if len(tot.Outputs) != n {
			t.Fatalf("n=%d: %d outputs", n, len(tot.Outputs))
		}
		for mask := 0; mask < 1<<n; mask++ {
			g := f.Clone()
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					g.AddDIMACS(i + 1)
				} else {
					g.AddDIMACS(-(i + 1))
				}
			}
			sat, m := cnf.BruteForce(g)
			if !sat {
				t.Fatalf("n=%d mask=%b: totalizer inconsistent", n, mask)
			}
			pop := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					pop++
				}
			}
			for i, o := range tot.Outputs {
				want := cnf.FromBool(pop > i)
				if m.Value(o) != want {
					t.Fatalf("n=%d mask=%b out[%d]=%v want %v", n, mask, i, m.Value(o), want)
				}
			}
		}
	}
}

func TestAtMostAtLeast(t *testing.T) {
	f := cnf.New(4)
	lits := []cnf.Lit{cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3), cnf.PosLit(4)}
	tot := BuildTotalizer(f, lits)
	tot.AtMost(f, 2)
	tot.AtLeast(f, 1)
	count := 0
	n := f.NumVars()
	if n > 25 {
		t.Fatal("formula too large for oracle")
	}
	// Count projected models over the four selector vars.
	seen := map[int]bool{}
	for mask := 0; mask < 16; mask++ {
		g := f.Clone()
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				g.AddDIMACS(i + 1)
			} else {
				g.AddDIMACS(-(i + 1))
			}
		}
		if sat, _ := cnf.BruteForce(g); sat {
			seen[mask] = true
			count++
		}
	}
	// Masks with popcount in [1,2]: C(4,1)+C(4,2) = 4+6 = 10.
	if count != 10 {
		t.Fatalf("count = %d, want 10 (%v)", count, seen)
	}
}

func TestSATAndBBOptimaAgree(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := RandomUnate(10, 8, 3, seed)
		sat := SolveSAT(p, Options{})
		bb := SolveBB(p, Options{})
		if !sat.Optimal || !bb.Optimal {
			t.Fatalf("seed %d: not optimal (sat=%v bb=%v)", seed, sat.Optimal, bb.Optimal)
		}
		if !sat.Feasible || !bb.Feasible {
			t.Fatalf("seed %d: infeasible?", seed)
		}
		if sat.Cost != bb.Cost {
			t.Fatalf("seed %d: SAT cost %d != BB cost %d", seed, sat.Cost, bb.Cost)
		}
		if !p.Feasible(sat.Select) || p.Cost(sat.Select) != sat.Cost {
			t.Fatalf("seed %d: SAT solution invalid", seed)
		}
		if !p.Feasible(bb.Select) || p.Cost(bb.Select) != bb.Cost {
			t.Fatalf("seed %d: BB solution invalid", seed)
		}
	}
}

func TestWeightedCovering(t *testing.T) {
	// Two rows; column 0 covers both at weight 3, columns 1+2 cover one
	// each at weight 1: optimum is 2 (pick 1 and 2).
	p := NewUnate(3, [][]int{{0, 1}, {0, 2}})
	p.Weights = []int{3, 1, 1}
	res := SolveSAT(p, Options{})
	if !res.Optimal || res.Cost != 2 {
		t.Fatalf("weighted optimum = %d, want 2 (%+v)", res.Cost, res)
	}
	// With cheap column 0 the optimum flips.
	p.Weights = []int{1, 1, 1}
	res = SolveSAT(p, Options{})
	if res.Cost != 1 || !res.Select[0] {
		t.Fatalf("unit optimum should pick column 0: %+v", res)
	}
}

func TestInfeasibleCovering(t *testing.T) {
	// A binate problem requiring column 0 both selected and not.
	p := &Problem{NumCols: 1}
	p.Rows = append(p.Rows, []RowLit{{Col: 0}})
	p.Rows = append(p.Rows, []RowLit{{Col: 0, Neg: true}})
	res := SolveSAT(p, Options{})
	if res.Feasible {
		t.Fatal("contradictory rows must be infeasible")
	}
}

func TestBinateCovering(t *testing.T) {
	// Selecting column 0 forbids column 1 (binate constraint), row needs
	// 0 or 1, another row needs 1 or 2: optimum 1 = {1}.
	p := &Problem{NumCols: 3}
	p.Rows = [][]RowLit{
		{{Col: 0}, {Col: 1}},
		{{Col: 1}, {Col: 2}},
		{{Col: 0, Neg: true}, {Col: 1, Neg: true}},
	}
	res := SolveSAT(p, Options{})
	if !res.Optimal || res.Cost != 1 || !res.Select[1] {
		t.Fatalf("binate optimum should be {1}: %+v", res)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{NumCols: 3}
	res := SolveSAT(p, Options{})
	if !res.Feasible || res.Cost != 0 || !res.Optimal {
		t.Fatalf("empty problem optimum is 0: %+v", res)
	}
	bb := SolveBB(p, Options{})
	if !bb.Feasible || bb.Cost != 0 {
		t.Fatalf("BB on empty problem: %+v", bb)
	}
}

func TestImplicantPredicates(t *testing.T) {
	// f = (x1 ∨ x2)(¬x1 ∨ x3).
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, 3)
	imp := Implicant{cnf.PosLit(1), cnf.PosLit(3)}
	if !imp.Implies(f) {
		t.Fatal("{x1, x3} is an implicant")
	}
	if !imp.IsPrime(f) {
		t.Fatal("{x1, x3} is prime")
	}
	big := Implicant{cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3)}
	if !big.Implies(f) || big.IsPrime(f) {
		t.Fatal("{x1,x2,x3} implies but is not prime")
	}
	bad := Implicant{cnf.PosLit(2)}
	if bad.Implies(f) {
		t.Fatal("{x2} does not satisfy clause 2")
	}
}

func TestMinPrimeImplicantMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		f := gen.RandomKSAT(6, 10, 3, seed)
		want := MinPrimeSizeBrute(f)
		res := MinPrimeImplicant(f, Options{})
		if want < 0 {
			if res.Found {
				t.Fatalf("seed %d: found implicant of UNSAT-ish formula", seed)
			}
			continue
		}
		if !res.Found || !res.Optimal {
			t.Fatalf("seed %d: not solved: %+v", seed, res)
		}
		if len(res.Implicant) != want {
			t.Fatalf("seed %d: size %d, oracle %d", seed, len(res.Implicant), want)
		}
		if !res.Implicant.IsPrime(f) {
			t.Fatalf("seed %d: result not prime", seed)
		}
	}
}

func TestMinPrimeOnTautologyLike(t *testing.T) {
	// f = (x1 ∨ ¬x1) reduced: single clause (x1): min prime = {x1}.
	f := cnf.New(1)
	f.AddDIMACS(1)
	res := MinPrimeImplicant(f, Options{})
	if !res.Found || len(res.Implicant) != 1 || res.Implicant[0] != cnf.PosLit(1) {
		t.Fatalf("min prime of (x1) wrong: %+v", res)
	}
}

func TestSolveSATBudget(t *testing.T) {
	p := RandomUnate(30, 25, 3, 1)
	res := SolveSAT(p, Options{Solver: solver.Options{MaxDecisions: 1}, MaxConflicts: 1})
	// Must terminate and not claim optimality it can't prove.
	if res.Optimal && !res.Feasible {
		t.Fatalf("inconsistent result: %+v", res)
	}
}

func TestReducePreservesOptimum(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := RandomUnate(12, 9, 3, seed)
		orig := SolveSAT(p, Options{})
		red, info := Reduce(p)
		got := SolveSAT(red, Options{})
		if !orig.Optimal || !got.Optimal {
			t.Fatalf("seed %d: unsolved", seed)
		}
		if got.Cost+info.ForcedCost != orig.Cost {
			t.Fatalf("seed %d: reduced %d + forced %d != original %d",
				seed, got.Cost, info.ForcedCost, orig.Cost)
		}
	}
}

func TestReduceEssentialColumn(t *testing.T) {
	// Row {2} is a singleton: column 2 is essential.
	p := NewUnate(4, [][]int{{2}, {0, 1}, {2, 3}})
	red, info := Reduce(p)
	has2 := false
	for _, c := range info.Forced {
		if c == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Fatalf("essential column 2 not forced: %+v", info)
	}
	// The cascade may solve the whole instance (dominance collapses
	// {0,1} to an essential too); the optimum identity must hold:
	// optimum = 2 (column 2 plus one of {0,1}).
	res := SolveSAT(red, Options{})
	if res.Cost+info.ForcedCost != 2 {
		t.Fatalf("optimum broken: %d + %d != 2", res.Cost, info.ForcedCost)
	}
}

func TestReduceRowDominance(t *testing.T) {
	// Row {0,1,2} is dominated by row {0,1}.
	p := NewUnate(3, [][]int{{0, 1}, {0, 1, 2}})
	red, info := Reduce(p)
	if info.RowsRemoved == 0 {
		t.Fatal("row dominance not applied")
	}
	// The cascade (dominance → essential → covered) may solve the
	// instance outright; the optimum identity is the real invariant.
	res := SolveSAT(red, Options{})
	if res.Cost+info.ForcedCost != 1 {
		t.Fatalf("optimum broken: %d + %d != 1", res.Cost, info.ForcedCost)
	}
}

func TestReduceColumnDominance(t *testing.T) {
	// Column 0 covers both rows; column 1 covers only one at the same
	// cost: column 1 is dominated.
	p := NewUnate(2, [][]int{{0, 1}, {0}})
	red, info := Reduce(p)
	if info.ColsRemoved == 0 {
		t.Fatal("column dominance not applied")
	}
	res := SolveSAT(red, Options{})
	if res.Cost+info.ForcedCost != 1 {
		t.Fatalf("optimum wrong after reduction: %d + %d", res.Cost, info.ForcedCost)
	}
}

func TestReduceWeightAware(t *testing.T) {
	// Column 0 covers a superset of column 1's rows but is MORE
	// expensive; dominance must not remove the cheap column.
	p := NewUnate(2, [][]int{{0, 1}, {0}})
	p.Weights = []int{10, 1}
	orig := SolveSAT(p, Options{})
	red, info := Reduce(p)
	got := SolveSAT(red, Options{})
	if got.Cost+info.ForcedCost != orig.Cost {
		t.Fatalf("weighted reduction broke optimum: %d+%d vs %d",
			got.Cost, info.ForcedCost, orig.Cost)
	}
}

func TestSolveWithReduceOption(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		p := RandomUnate(14, 10, 3, seed)
		plain := SolveSAT(p, Options{})
		reduced := SolveSAT(p, Options{Reduce: true})
		if plain.Cost != reduced.Cost || !reduced.Optimal {
			t.Fatalf("seed %d: reduce changed optimum %d -> %d", seed, plain.Cost, reduced.Cost)
		}
		if !p.Feasible(reduced.Select) {
			t.Fatalf("seed %d: reduced solution infeasible on original", seed)
		}
		bbRed := SolveBB(p, Options{Reduce: true})
		if bbRed.Cost != plain.Cost {
			t.Fatalf("seed %d: BB+reduce optimum %d != %d", seed, bbRed.Cost, plain.Cost)
		}
		if !p.Feasible(bbRed.Select) {
			t.Fatalf("seed %d: BB reduced solution infeasible", seed)
		}
	}
}
