package cover

// ReduceInfo reports what the covering-matrix reductions did.
type ReduceInfo struct {
	// Forced columns were selected by the essential-column rule; their
	// cost must be added to the reduced problem's optimum.
	Forced []int
	// ForcedCost is the total cost of the forced columns.
	ForcedCost int
	// RowsRemoved and ColsRemoved count eliminated rows and columns.
	RowsRemoved int
	ColsRemoved int
	Rounds      int
}

// Reduce applies the classical unate covering-matrix reductions
// ([Coudert], paper §3) to fixpoint:
//
//   - essential columns: a row coverable by exactly one column forces
//     that column into the solution,
//   - row dominance: a row whose column set contains another row's is
//     redundant (covering the smaller row covers it),
//   - column dominance: a column covering a subset of another's rows at
//     no lower cost can be discarded.
//
// It returns an equivalent reduced problem and the bookkeeping needed to
// reconstruct the optimum: opt(original) = opt(reduced) + ForcedCost.
// Only unate problems are supported (binate rows panic).
func Reduce(p *Problem) (*Problem, *ReduceInfo) {
	for _, row := range p.Rows {
		for _, rl := range row {
			if rl.Neg {
				panic("cover: Reduce supports unate problems only")
			}
		}
	}
	info := &ReduceInfo{}
	// Working state: live rows as column sets, live columns.
	rows := make([]map[int]bool, len(p.Rows))
	for i, row := range p.Rows {
		rows[i] = map[int]bool{}
		for _, rl := range row {
			rows[i][rl.Col] = true
		}
	}
	liveRow := make([]bool, len(rows))
	for i := range liveRow {
		liveRow[i] = true
	}
	liveCol := make([]bool, p.NumCols)
	for i := range liveCol {
		liveCol[i] = true
	}
	forced := map[int]bool{}

	covered := func(i int) bool {
		for c := range rows[i] {
			if forced[c] {
				return true
			}
		}
		return false
	}

	for round := 0; round < p.NumCols+len(rows)+1; round++ {
		info.Rounds = round + 1
		changed := false

		// Essential columns.
		for i := range rows {
			if !liveRow[i] || covered(i) {
				continue
			}
			var last, count = -1, 0
			for c := range rows[i] {
				if liveCol[c] {
					last = c
					count++
				}
			}
			if count == 1 && !forced[last] {
				forced[last] = true
				info.Forced = append(info.Forced, last)
				info.ForcedCost += weight(p, last)
				changed = true
			}
		}
		// Drop covered rows.
		for i := range rows {
			if liveRow[i] && covered(i) {
				liveRow[i] = false
				info.RowsRemoved++
				changed = true
			}
		}
		// Row dominance: r1 ⊇ r2 (restricted to live columns) → drop r1.
		for i := range rows {
			if !liveRow[i] {
				continue
			}
			for j := range rows {
				if i == j || !liveRow[j] {
					continue
				}
				if liveSubset(rows[j], rows[i], liveCol) && !(liveSubset(rows[i], rows[j], liveCol) && i < j) {
					liveRow[i] = false
					info.RowsRemoved++
					changed = true
					break
				}
			}
		}
		// Column dominance: rows(c2) ⊆ rows(c1) and w(c1) ≤ w(c2) → drop c2.
		colRows := make([]map[int]bool, p.NumCols)
		for c := 0; c < p.NumCols; c++ {
			colRows[c] = map[int]bool{}
		}
		for i := range rows {
			if !liveRow[i] {
				continue
			}
			for c := range rows[i] {
				if liveCol[c] {
					colRows[c][i] = true
				}
			}
		}
		for c2 := 0; c2 < p.NumCols; c2++ {
			if !liveCol[c2] || forced[c2] {
				continue
			}
			for c1 := 0; c1 < p.NumCols; c1++ {
				if c1 == c2 || !liveCol[c1] {
					continue
				}
				if weight(p, c1) > weight(p, c2) {
					continue
				}
				if subsetInt(colRows[c2], colRows[c1]) && !(subsetInt(colRows[c1], colRows[c2]) && weight(p, c1) == weight(p, c2) && c1 > c2) {
					liveCol[c2] = false
					info.ColsRemoved++
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}

	out := &Problem{NumCols: p.NumCols, Weights: p.Weights}
	for i := range rows {
		if !liveRow[i] {
			continue
		}
		var row []RowLit
		for c := range rows[i] {
			if liveCol[c] {
				row = append(row, RowLit{Col: c})
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, info
}

// liveSubset reports a ⊆ b restricted to live columns.
func liveSubset(a, b map[int]bool, liveCol []bool) bool {
	for c := range a {
		if !liveCol[c] {
			continue
		}
		if !b[c] {
			return false
		}
	}
	return true
}

func subsetInt(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
