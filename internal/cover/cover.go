package cover

import (
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// Problem is a (possibly binate) covering problem: choose a minimum-cost
// subset of columns such that every row is covered. Row literals are
// column indices; negative entries (binate rows) are covered by NOT
// selecting the column.
type Problem struct {
	NumCols int
	// Rows[i] lists the satisfying column literals of row i: +c means
	// "column c selected", -c-1 is not used — we encode polarity in the
	// RowLit struct instead.
	Rows [][]RowLit
	// Weights holds per-column costs (nil = unit costs).
	Weights []int
}

// RowLit is one literal of a covering row.
type RowLit struct {
	Col int
	Neg bool // covered by NOT selecting the column (binate rows)
}

// NewUnate builds a unate covering problem from rows of column indices.
func NewUnate(numCols int, rows [][]int) *Problem {
	p := &Problem{NumCols: numCols}
	for _, r := range rows {
		row := make([]RowLit, len(r))
		for i, c := range r {
			row[i] = RowLit{Col: c}
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// Cost returns the cost of a selection.
func (p *Problem) Cost(sel []bool) int {
	cost := 0
	for c, on := range sel {
		if on {
			if p.Weights != nil {
				cost += p.Weights[c]
			} else {
				cost++
			}
		}
	}
	return cost
}

// Feasible reports whether the selection covers every row.
func (p *Problem) Feasible(sel []bool) bool {
	for _, row := range p.Rows {
		ok := false
		for _, rl := range row {
			if sel[rl.Col] != rl.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Result reports an optimization run.
type Result struct {
	// Optimal is true when optimality was proven within budget.
	Optimal bool
	// Feasible is false when the constraints are unsatisfiable.
	Feasible bool
	Cost     int
	Select   []bool
	SATCalls int
	// Nodes counts branch-and-bound tree nodes (B&B only).
	Nodes int64
}

// Options configures the optimizers.
type Options struct {
	// MaxConflicts bounds each SAT call (0 = unlimited).
	MaxConflicts int64
	Solver       solver.Options
	// Reduce applies the covering-matrix reductions (essential columns,
	// row/column dominance) before optimization; the forced columns are
	// merged back into the reported solution.
	Reduce bool
}

// SolveSAT minimizes the covering cost by linear SAT/UNSAT search with a
// totalizer bound ([Manquinho & Marques-Silva], paper §3).
func SolveSAT(p *Problem, opts Options) *Result {
	if opts.Reduce {
		return solveReduced(p, opts, SolveSAT)
	}
	res := &Result{}
	f := cnf.New(p.NumCols) // var c+1 = column c selected
	for _, row := range p.Rows {
		c := make(cnf.Clause, len(row))
		for i, rl := range row {
			c[i] = cnf.NewLit(cnf.Var(rl.Col+1), rl.Neg)
		}
		f.AddClause(c)
	}
	costLits := make([]cnf.Lit, p.NumCols)
	for c := 0; c < p.NumCols; c++ {
		costLits[c] = cnf.PosLit(cnf.Var(c + 1))
	}
	tot := BuildTotalizer(f, WeightedLits(costLits, p.Weights))

	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)

	for {
		res.SATCalls++
		switch s.Solve() {
		case solver.Sat:
			m := s.Model()
			sel := make([]bool, p.NumCols)
			for c := 0; c < p.NumCols; c++ {
				sel[c] = m.Value(cnf.Var(c+1)) == cnf.True
			}
			cost := p.Cost(sel)
			res.Feasible = true
			res.Cost = cost
			res.Select = sel
			if cost == 0 {
				res.Optimal = true
				return res
			}
			// Tighten: cost ≤ current-1 via totalizer outputs.
			for i := cost - 1; i < len(tot.Outputs); i++ {
				if !s.AddClause(cnf.Clause{cnf.NegLit(tot.Outputs[i])}) {
					res.Optimal = true
					return res
				}
			}
		case solver.Unsat:
			if res.Feasible {
				res.Optimal = true // previous model was optimal
			}
			return res
		default:
			return res // budget exhausted; best-so-far in res
		}
	}
}

// SolveBB minimizes the covering cost with classic branch and bound:
// essential-column and dominance reductions, an independent-row-set
// lower bound, and branching on the column covering the most rows
// ([Coudert]-style baseline). Only unate problems are supported.
func SolveBB(p *Problem, opts Options) *Result {
	for _, row := range p.Rows {
		for _, rl := range row {
			if rl.Neg {
				panic("cover: SolveBB supports unate problems only")
			}
		}
	}
	if opts.Reduce {
		return solveReduced(p, opts, SolveBB)
	}
	res := &Result{Cost: 1 << 30}
	sel := make([]bool, p.NumCols)
	banned := make([]bool, p.NumCols)
	alive := make([]bool, len(p.Rows))
	for i := range alive {
		alive[i] = true
	}
	bb(p, sel, banned, alive, 0, res)
	if res.Cost == 1<<30 {
		res.Cost = 0
		return res
	}
	res.Feasible = true
	res.Optimal = true
	return res
}

func weight(p *Problem, c int) int {
	if p.Weights == nil {
		return 1
	}
	return p.Weights[c]
}

func bb(p *Problem, sel, banned, alive []bool, cost int, res *Result) {
	res.Nodes++
	// Collect uncovered rows.
	var open []int
	for i, a := range alive {
		if !a {
			continue
		}
		covered := false
		feasible := false
		for _, rl := range p.Rows[i] {
			if sel[rl.Col] {
				covered = true
				break
			}
			if !banned[rl.Col] {
				feasible = true
			}
		}
		if covered {
			continue
		}
		if !feasible {
			return // dead end: row cannot be covered any more
		}
		open = append(open, i)
	}
	if len(open) == 0 {
		if cost < res.Cost {
			res.Cost = cost
			res.Select = append([]bool(nil), sel...)
		}
		return
	}
	// Lower bound: greedy independent set of open rows (no shared
	// columns); each needs at least its cheapest column.
	lb := 0
	usedCols := make(map[int]bool)
	for _, r := range open {
		shares := false
		minW := 1 << 30
		for _, rl := range p.Rows[r] {
			if banned[rl.Col] {
				continue
			}
			if usedCols[rl.Col] {
				shares = true
			}
			if w := weight(p, rl.Col); w < minW {
				minW = w
			}
		}
		if !shares && minW < 1<<30 {
			lb += minW
			for _, rl := range p.Rows[r] {
				usedCols[rl.Col] = true
			}
		}
	}
	if cost+lb >= res.Cost {
		return // bound
	}
	// Branch on the column covering the most open rows (per unit cost).
	counts := make([]int, p.NumCols)
	for _, r := range open {
		for _, rl := range p.Rows[r] {
			if !banned[rl.Col] && !sel[rl.Col] {
				counts[rl.Col]++
			}
		}
	}
	best := -1
	for c, n := range counts {
		if n == 0 {
			continue
		}
		if best < 0 || n*weight(p, best) > counts[best]*weight(p, c) {
			best = c
		}
	}
	if best < 0 {
		return
	}
	// Include best.
	sel[best] = true
	bb(p, sel, banned, alive, cost+weight(p, best), res)
	sel[best] = false
	// Exclude best.
	banned[best] = true
	bb(p, sel, banned, alive, cost, res)
	banned[best] = false
}

// RandomUnate generates a random unate covering instance where every row
// has `perRow` distinct columns; a full-column check guarantees
// feasibility.
func RandomUnate(rows, cols, perRow int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{NumCols: cols}
	for r := 0; r < rows; r++ {
		seen := map[int]bool{}
		var row []RowLit
		for len(row) < perRow {
			c := rng.Intn(cols)
			if seen[c] {
				continue
			}
			seen[c] = true
			row = append(row, RowLit{Col: c})
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// solveReduced runs the reductions, solves the residue with the given
// engine (with reductions disabled to avoid recursion), and merges the
// forced columns back into the reported solution.
func solveReduced(p *Problem, opts Options, engine func(*Problem, Options) *Result) *Result {
	red, info := Reduce(p)
	sub := opts
	sub.Reduce = false
	res := engine(red, sub)
	if !res.Feasible && len(red.Rows) == 0 {
		// Fully solved by reductions.
		res.Feasible = true
		res.Optimal = true
		res.Cost = 0
		res.Select = make([]bool, p.NumCols)
	}
	if res.Feasible {
		if res.Select == nil {
			res.Select = make([]bool, p.NumCols)
		}
		for _, c := range info.Forced {
			if !res.Select[c] {
				res.Select[c] = true
			}
		}
		res.Cost = p.Cost(res.Select)
	}
	return res
}
