// Package cover implements SAT-based solutions of covering problems and
// linear (pseudo-Boolean) optimization (paper §3; [Barth], [Coudert],
// [Manquinho & Marques-Silva]), plus minimum-size prime implicant
// computation ([Manquinho, Oliveira & Marques-Silva]).
//
// The optimizer performs a linear SAT/UNSAT search on the cost bound: a
// totalizer-encoded cardinality constraint "cost ≤ k" is tightened each
// time a cheaper model is found, until UNSAT proves optimality. A
// classic branch-and-bound solver with an independent-set lower bound
// serves as the baseline the paper's covering references compare
// against.
package cover

import "repro/internal/cnf"

// Totalizer encodes a unary sorting network over the input literals:
// output variable out[i] is true iff at least i+1 inputs are true.
// Tightening the bound later only requires asserting ¬out[k], which is
// how the optimizer's linear search strengthens the cost constraint
// incrementally.
type Totalizer struct {
	Outputs []cnf.Var
}

// BuildTotalizer appends the totalizer clauses for lits to f and returns
// the (sorted-unary) output variables.
func BuildTotalizer(f *cnf.Formula, lits []cnf.Lit) *Totalizer {
	if len(lits) == 0 {
		return &Totalizer{}
	}
	outs := buildTot(f, lits)
	return &Totalizer{Outputs: outs}
}

// buildTot recursively merges unary counts.
func buildTot(f *cnf.Formula, lits []cnf.Lit) []cnf.Var {
	if len(lits) == 1 {
		// A single input: its unary count is the literal itself; create
		// a proxy variable v ≡ lit.
		v := f.NewVar()
		f.Add(cnf.NegLit(v), lits[0])
		f.Add(cnf.PosLit(v), lits[0].Not())
		return []cnf.Var{v}
	}
	mid := len(lits) / 2
	left := buildTot(f, lits[:mid])
	right := buildTot(f, lits[mid:])
	out := make([]cnf.Var, len(left)+len(right))
	for i := range out {
		out[i] = f.NewVar()
	}
	// Merge: out[k] true iff left-count + right-count >= k+1.
	// Standard totalizer clauses, both directions for propagation
	// strength:
	//   left_{a} ∧ right_{b} → out_{a+b+1}   (a,b counts, 1-based)
	//   ¬left_{a+1} ∧ ¬right_{b+1} → ¬out_{a+b+1}
	la, lb := len(left), len(right)
	for a := 0; a <= la; a++ {
		for b := 0; b <= lb; b++ {
			if a+b >= 1 && a+b <= len(out) {
				// (≥a from left) ∧ (≥b from right) → ≥(a+b) total.
				c := cnf.Clause{}
				if a > 0 {
					c = append(c, cnf.NegLit(left[a-1]))
				}
				if b > 0 {
					c = append(c, cnf.NegLit(right[b-1]))
				}
				c = append(c, cnf.PosLit(out[a+b-1]))
				f.AddClause(c)
			}
			if a+b < len(out) {
				// (<a+1 from left) ∧ (<b+1 from right) → <(a+b+1) total.
				c := cnf.Clause{}
				if a < la {
					c = append(c, cnf.PosLit(left[a]))
				}
				if b < lb {
					c = append(c, cnf.PosLit(right[b]))
				}
				if len(c) == 0 {
					continue
				}
				c = append(c, cnf.NegLit(out[a+b]))
				f.AddClause(c)
			}
		}
	}
	return out
}

// AtMost asserts that at most k of the totalizer's inputs are true.
func (t *Totalizer) AtMost(f *cnf.Formula, k int) {
	for i := k; i < len(t.Outputs); i++ {
		f.Add(cnf.NegLit(t.Outputs[i]))
	}
}

// AtLeast asserts that at least k of the totalizer's inputs are true.
func (t *Totalizer) AtLeast(f *cnf.Formula, k int) {
	for i := 0; i < k && i < len(t.Outputs); i++ {
		f.Add(cnf.PosLit(t.Outputs[i]))
	}
}

// WeightedLits expands a weighted pseudo-Boolean sum Σ w_i·x_i into a
// multiset of unit-weight literals for totalizer counting (practical for
// the small weights of covering problems; the expansion is linear in the
// total weight).
func WeightedLits(lits []cnf.Lit, weights []int) []cnf.Lit {
	var out []cnf.Lit
	for i, l := range lits {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		for j := 0; j < w; j++ {
			out = append(out, l)
		}
	}
	return out
}
