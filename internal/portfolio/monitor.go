package portfolio

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/solver"
)

// monitorEventCap bounds the event ring a Monitor retains; older events
// are dropped from the front.
const monitorEventCap = 64

// Monitor is a live progress window onto a running solve. Engines that
// accept one (portfolio.Options.Monitor, and the bmc/cec options that
// forward to their internal solvers) attach every solver they spawn;
// any other goroutine may call Snapshot at any time to observe
// conflict throughput, learnt-clause quality and the kill/respawn
// history while the solve is still running. This is the probe the
// serving layer's status endpoints sample.
//
// A Monitor is safe for concurrent use. Attach/detach only registers
// the solver pointer; sampling goes through solver.Snapshot, which is
// race-free by construction, so a Snapshot never blocks the search.
// A Monitor must not be shared between concurrent solves — give each
// job its own.
type Monitor struct {
	mu       sync.Mutex
	seq      int
	live     map[int]*monitorEntry
	events   []string
	kills    int
	respawns int
	// retiredConflicts accumulates the final conflict counts of
	// detached workers, so a run's total conflict view stays monotonic
	// across kills and respawns.
	retiredConflicts int64
	// retiredPhaseNS likewise accumulates detached workers' attributed
	// phase time, so the latency-attribution view covers the whole run,
	// killed recipes included.
	retiredPhaseNS [solver.PhaseCount]int64
}

type monitorEntry struct {
	slot, gen int
	label     string
	s         *solver.Solver
	since     time.Time
}

// NewMonitor creates an empty Monitor.
func NewMonitor() *Monitor {
	return &Monitor{live: make(map[int]*monitorEntry)}
}

// Attach registers a running solver under a display label and a
// (slot, gen) scheduling coordinate (0, 0 for single-solver engines).
// The returned detach func removes the registration; a non-empty
// reason is recorded in the event history ("label: reason"). Detach is
// idempotent.
func (m *Monitor) Attach(slot, gen int, label string, s *solver.Solver) func(reason string) {
	if m == nil {
		return func(string) {}
	}
	m.mu.Lock()
	id := m.seq
	m.seq++
	m.live[id] = &monitorEntry{slot: slot, gen: gen, label: label, s: s, since: time.Now()}
	m.mu.Unlock()
	var once sync.Once
	return func(reason string) {
		once.Do(func() {
			final := s.Snapshot() // race-free at any time
			m.mu.Lock()
			delete(m.live, id)
			m.retiredConflicts += final.Conflicts
			for i, ns := range final.PhaseNS {
				m.retiredPhaseNS[i] += ns
			}
			if reason != "" {
				m.noteLocked(fmt.Sprintf("%s: %s", label, reason))
			}
			m.mu.Unlock()
		})
	}
}

// Note appends a free-form event to the bounded history.
func (m *Monitor) Note(event string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.noteLocked(event)
	m.mu.Unlock()
}

func (m *Monitor) noteLocked(event string) {
	if len(m.events) >= monitorEventCap {
		m.events = append(m.events[:0], m.events[len(m.events)-monitorEventCap+1:]...)
	}
	m.events = append(m.events, event)
}

// NoteKill records a supervisor kill in the history and counters.
func (m *Monitor) NoteKill(label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.kills++
	m.noteLocked("kill " + label)
	m.mu.Unlock()
}

// NoteRespawn records a slot respawn in the history and counters.
func (m *Monitor) NoteRespawn(label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.respawns++
	m.noteLocked("respawn " + label)
	m.mu.Unlock()
}

// LiveWorker is one attached solver's progress at Snapshot time.
type LiveWorker struct {
	Slot, Gen int
	Label     string
	Age       time.Duration
	Conflicts int64
	Restarts  int64
	Learned   int64
	// GlueShare is the fraction of learnt clauses with LBD ≤ 3.
	GlueShare float64
	// PhaseNS is the worker's attributed search time per solver phase
	// (indexed by solver.Phase).
	PhaseNS [solver.PhaseCount]int64
}

// MonitorSnapshot is a point-in-time view of a monitored solve.
type MonitorSnapshot struct {
	// Live lists the currently attached solvers in attach order.
	Live []LiveWorker
	// RetiredConflicts is the summed final conflict count of workers
	// that have already detached (killed, retired or finished), so
	// Conflicts() stays monotonic across kills and respawns.
	RetiredConflicts int64
	// RetiredPhaseNS is the summed per-phase attributed time of
	// already-detached workers (indexed by solver.Phase).
	RetiredPhaseNS [solver.PhaseCount]int64
	// Kills / Respawns mirror the supervisor counters so far.
	Kills, Respawns int
	// Events is the bounded history of kills, respawns and detach
	// reasons, oldest first.
	Events []string
}

// Conflicts totals the run's conflicts so far: every live worker's
// count plus the final counts of already-detached workers.
func (s *MonitorSnapshot) Conflicts() int64 {
	n := s.RetiredConflicts
	for _, w := range s.Live {
		n += w.Conflicts
	}
	return n
}

// PhaseTotals sums the run's attributed search time per phase — every
// live worker's accumulation plus the detached workers' finals — keyed
// by the stable solver.PhaseNames labels. CPU time, not wall-clock:
// with N parallel workers the totals may exceed elapsed time N-fold.
func (s *MonitorSnapshot) PhaseTotals() map[string]int64 {
	out := make(map[string]int64, solver.PhaseCount)
	for i, name := range solver.PhaseNames {
		n := s.RetiredPhaseNS[i]
		for _, w := range s.Live {
			n += w.PhaseNS[i]
		}
		out[name] = n
	}
	return out
}

// Snapshot samples every attached solver. Safe to call from any
// goroutine while the solve runs; the per-worker numbers come from
// solver.Snapshot and are individually race-free.
func (m *Monitor) Snapshot() MonitorSnapshot {
	if m == nil {
		return MonitorSnapshot{}
	}
	m.mu.Lock()
	ids := make([]int, 0, len(m.live))
	for id := range m.live {
		ids = append(ids, id)
	}
	slices.Sort(ids) // attach order == id order
	entries := make([]*monitorEntry, len(ids))
	for i, id := range ids {
		entries[i] = m.live[id]
	}
	out := MonitorSnapshot{
		RetiredConflicts: m.retiredConflicts,
		RetiredPhaseNS:   m.retiredPhaseNS,
		Kills:            m.kills,
		Respawns:         m.respawns,
		Events:           append([]string(nil), m.events...),
	}
	m.mu.Unlock()

	// Sample outside the monitor lock: solver.Snapshot is atomic-based
	// and never blocks, but there is no reason to serialize it either.
	now := time.Now()
	for _, e := range entries {
		snap := e.s.Snapshot()
		out.Live = append(out.Live, LiveWorker{
			Slot: e.slot, Gen: e.gen, Label: e.label,
			Age:       now.Sub(e.since),
			Conflicts: snap.Conflicts,
			Restarts:  snap.Restarts,
			Learned:   snap.Learned,
			GlueShare: snap.GlueShare(),
			PhaseNS:   snap.PhaseNS,
		})
	}
	return out
}
