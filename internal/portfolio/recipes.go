package portfolio

import (
	"fmt"
	"strings"

	"repro/internal/solver"
)

// RecipeFamily reduces a worker's reported recipe name to its family —
// the recipe-table entry it was derived from. Display names decorate
// the family with lap markers ("luby-agile+rnd#1") and respawn
// coordinates ("geometric/exploit#s2g1"); the family is the stable
// cross-run identity a recipe memory keys on.
func RecipeFamily(name string) string {
	if i := strings.IndexAny(name, "+/#"); i >= 0 {
		return name[:i]
	}
	return name
}

// recipeIndex returns the recipe-table index of a family name, or -1.
func recipeIndex(family string) int {
	for i, r := range recipes {
		if r.name == family {
			return i
		}
	}
	return -1
}

// A recipe deterministically diversifies the base solver options for one
// worker. Worker 0 always runs the base configuration unchanged, so a
// one-worker portfolio reproduces the sequential solver exactly; later
// workers spread across the configuration axes the paper singles out
// (§6): restart policy, decision heuristic, randomization frequency,
// learning/deletion policy and PRNG seed.
type recipe struct {
	name  string
	apply func(*solver.Options)
}

var recipes = []recipe{
	{"base", func(o *solver.Options) {}},
	{"geometric", func(o *solver.Options) {
		o.Restart = solver.RestartGeometric
		o.RestartBase = 120
	}},
	{"luby-agile", func(o *solver.Options) {
		o.Restart = solver.RestartLuby
		o.RestartBase = 32
		o.RandomFreq = 0.02
	}},
	{"fixed-rand", func(o *solver.Options) {
		o.Restart = solver.RestartFixed
		o.RestartBase = 256
		o.RandomFreq = 0.05
	}},
	{"relevance", func(o *solver.Options) {
		o.Deletion = solver.DeleteByRelevance
		o.RelevanceBound = 4
		o.Restart = solver.RestartLuby
		o.RestartBase = 64
	}},
	{"nophase", func(o *solver.Options) {
		o.NoPhaseSaving = true
		o.Restart = solver.RestartGeometric
		o.RestartBase = 64
		o.RandomFreq = 0.03
	}},
	{"keepall", func(o *solver.Options) {
		o.Deletion = solver.DeleteNever
		o.Restart = solver.RestartLuby
		o.RestartBase = 200
	}},
	{"random-heavy", func(o *solver.Options) {
		o.RandomFreq = 0.15
		o.Restart = solver.RestartLuby
		o.RestartBase = 32
	}},
}

// respawn returns the options, display name and recipe-table index for
// the worker respawned into slot at generation gen, after the
// supervisor killed the previous occupant. The schedule alternates:
//
//   - exploit (odd generations, when a best live recipe is known):
//     clone the recipe of the current best-scoring worker with a fresh
//     seed — the diversification axis that is winning keeps a second
//     rider on a different trajectory;
//   - explore (even generations, or no known best): walk the recipe
//     table at the global spawn counter, reaching configurations the
//     initial lineup never ran.
//
// spawnIdx is the portfolio-wide spawn counter, so every respawned
// worker gets a PRNG seed distinct from every worker before it (same
// scheme as diversify); a pinch of randomization is forced for
// PRNG-free recipes so the fresh seed actually changes the search. The
// result is a pure function of (spawnIdx, slot, gen, exploitIdx,
// seeds): which draws happen — and in what order — still depends on
// wall-clock kill timing, but a recorded lineage pins every recipe and
// seed that ran.
func respawn(spawnIdx, slot, gen int, base solver.Options, seed int64, exploitIdx int) (solver.Options, string, int) {
	return respawnPrefer(spawnIdx, slot, gen, base, seed, exploitIdx, -1)
}

// respawnPrefer is respawn with a cross-run memory hint: when
// preferIdx names a recipe family that historically won this instance
// class, the EXPLORE arm alternates between that family (even spawn
// indices, mode "explore-mem") and a plain table walk advancing at
// half speed (odd ones, index spawnIdx/2 mod table), so the schedule
// is seeded toward the remembered winner while every table entry —
// even and odd residues alike — stays reachable. The exploit arm is unchanged —
// it already chases the in-run leader. Determinism is preserved: the
// draw stays a pure function of (spawnIdx, slot, gen, exploitIdx,
// preferIdx, seeds).
func respawnPrefer(spawnIdx, slot, gen int, base solver.Options, seed int64, exploitIdx, preferIdx int) (solver.Options, string, int) {
	idx := spawnIdx % len(recipes)
	mode := "explore"
	if preferIdx >= 0 && preferIdx < len(recipes) {
		if spawnIdx%2 == 0 {
			idx = preferIdx
			mode = "explore-mem"
		} else {
			// The plain walk advances by its own counter, NOT spawnIdx
			// % len(recipes): with the table length even, odd spawn
			// indices alone would only ever reach odd residues,
			// silently halving table coverage whenever a hint is
			// active — exactly the blind spot that would stop the
			// memory from ever observing a better family win.
			idx = (spawnIdx / 2) % len(recipes)
		}
	}
	if gen%2 == 1 && exploitIdx >= 0 && exploitIdx < len(recipes) {
		idx = exploitIdx
		mode = "exploit"
	}
	r := recipes[idx]
	o := base
	r.apply(&o)
	o.Seed = base.Seed + seed + int64(spawnIdx)*0x9e3779b9
	if o.RandomFreq == 0 {
		o.RandomFreq = 0.02
	}
	name := fmt.Sprintf("%s/%s#s%dg%d", r.name, mode, slot, gen)
	return o, name, idx
}

// diversify returns the options and human-readable recipe name for
// worker i. Beyond the recipe table, workers wrap around with fresh
// seeds, so any worker count stays diversified.
func diversify(i int, base solver.Options, seed int64) (solver.Options, string) {
	o, name, _ := diversifyPrefer(i, base, seed, -1)
	return o, name
}

// diversifyPrefer is diversify with a cross-run memory hint: when
// preferIdx is a valid recipe index, worker 1 runs that family (with
// worker 1's usual fresh seed) instead of its table entry, so the
// remembered winner is racing from the first lineup, not only after a
// kill. Worker 0 stays the undiversified base — the determinism anchor
// — and every other worker keeps its table draw. The third return is
// the recipe-table index actually used.
func diversifyPrefer(i int, base solver.Options, seed int64, preferIdx int) (solver.Options, string, int) {
	o := base
	idx := i % len(recipes)
	if i == 1 && preferIdx >= 0 && preferIdx < len(recipes) && preferIdx != 0 {
		idx = preferIdx
	}
	r := recipes[idx]
	name := r.name
	if i == 1 && idx == preferIdx {
		name = r.name + "/mem"
	}
	if i > 0 {
		r.apply(&o)
		// Distinct deterministic seed per worker.
		o.Seed = base.Seed + seed + int64(i)*0x9e3779b9
		if i >= len(recipes) {
			// Wrap-around lap: recipes that never consult the PRNG
			// (no RandomFreq, deterministic heuristic) would search
			// identically to their first-lap twin regardless of seed;
			// a pinch of randomization makes the fresh seed count.
			// The name records the lap so winner attribution stays
			// reproducible (the reported recipe is not the plain one).
			if o.RandomFreq == 0 {
				o.RandomFreq = 0.02
			}
			name = fmt.Sprintf("%s+rnd#%d", r.name, i/len(recipes))
		}
	}
	return o, name, idx
}
