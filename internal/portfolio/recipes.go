package portfolio

import (
	"fmt"

	"repro/internal/solver"
)

// A recipe deterministically diversifies the base solver options for one
// worker. Worker 0 always runs the base configuration unchanged, so a
// one-worker portfolio reproduces the sequential solver exactly; later
// workers spread across the configuration axes the paper singles out
// (§6): restart policy, decision heuristic, randomization frequency,
// learning/deletion policy and PRNG seed.
type recipe struct {
	name  string
	apply func(*solver.Options)
}

var recipes = []recipe{
	{"base", func(o *solver.Options) {}},
	{"geometric", func(o *solver.Options) {
		o.Restart = solver.RestartGeometric
		o.RestartBase = 120
	}},
	{"luby-agile", func(o *solver.Options) {
		o.Restart = solver.RestartLuby
		o.RestartBase = 32
		o.RandomFreq = 0.02
	}},
	{"fixed-rand", func(o *solver.Options) {
		o.Restart = solver.RestartFixed
		o.RestartBase = 256
		o.RandomFreq = 0.05
	}},
	{"relevance", func(o *solver.Options) {
		o.Deletion = solver.DeleteByRelevance
		o.RelevanceBound = 4
		o.Restart = solver.RestartLuby
		o.RestartBase = 64
	}},
	{"nophase", func(o *solver.Options) {
		o.NoPhaseSaving = true
		o.Restart = solver.RestartGeometric
		o.RestartBase = 64
		o.RandomFreq = 0.03
	}},
	{"keepall", func(o *solver.Options) {
		o.Deletion = solver.DeleteNever
		o.Restart = solver.RestartLuby
		o.RestartBase = 200
	}},
	{"random-heavy", func(o *solver.Options) {
		o.RandomFreq = 0.15
		o.Restart = solver.RestartLuby
		o.RestartBase = 32
	}},
}

// respawn returns the options, display name and recipe-table index for
// the worker respawned into slot at generation gen, after the
// supervisor killed the previous occupant. The schedule alternates:
//
//   - exploit (odd generations, when a best live recipe is known):
//     clone the recipe of the current best-scoring worker with a fresh
//     seed — the diversification axis that is winning keeps a second
//     rider on a different trajectory;
//   - explore (even generations, or no known best): walk the recipe
//     table at the global spawn counter, reaching configurations the
//     initial lineup never ran.
//
// spawnIdx is the portfolio-wide spawn counter, so every respawned
// worker gets a PRNG seed distinct from every worker before it (same
// scheme as diversify); a pinch of randomization is forced for
// PRNG-free recipes so the fresh seed actually changes the search. The
// result is a pure function of (spawnIdx, slot, gen, exploitIdx,
// seeds): which draws happen — and in what order — still depends on
// wall-clock kill timing, but a recorded lineage pins every recipe and
// seed that ran.
func respawn(spawnIdx, slot, gen int, base solver.Options, seed int64, exploitIdx int) (solver.Options, string, int) {
	idx := spawnIdx % len(recipes)
	mode := "explore"
	if gen%2 == 1 && exploitIdx >= 0 && exploitIdx < len(recipes) {
		idx = exploitIdx
		mode = "exploit"
	}
	r := recipes[idx]
	o := base
	r.apply(&o)
	o.Seed = base.Seed + seed + int64(spawnIdx)*0x9e3779b9
	if o.RandomFreq == 0 {
		o.RandomFreq = 0.02
	}
	name := fmt.Sprintf("%s/%s#s%dg%d", r.name, mode, slot, gen)
	return o, name, idx
}

// diversify returns the options and human-readable recipe name for
// worker i. Beyond the recipe table, workers wrap around with fresh
// seeds, so any worker count stays diversified.
func diversify(i int, base solver.Options, seed int64) (solver.Options, string) {
	o := base
	r := recipes[i%len(recipes)]
	name := r.name
	if i > 0 {
		r.apply(&o)
		// Distinct deterministic seed per worker.
		o.Seed = base.Seed + seed + int64(i)*0x9e3779b9
		if i >= len(recipes) {
			// Wrap-around lap: recipes that never consult the PRNG
			// (no RandomFreq, deterministic heuristic) would search
			// identically to their first-lap twin regardless of seed;
			// a pinch of randomization makes the fresh seed count.
			// The name records the lap so winner attribution stays
			// reproducible (the reported recipe is not the plain one).
			if o.RandomFreq == 0 {
				o.RandomFreq = 0.02
			}
			name = fmt.Sprintf("%s+rnd#%d", r.name, i/len(recipes))
		}
	}
	return o, name
}
