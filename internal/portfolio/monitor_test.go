package portfolio

import (
	"fmt"
	"sync"
	"testing"
)

// TestMonitorEventOrdering: events come back oldest first, exactly as
// recorded, while under the ring cap.
func TestMonitorEventOrdering(t *testing.T) {
	m := NewMonitor()
	m.Note("first")
	m.NoteKill("w0")
	m.NoteRespawn("w0")
	m.Note("last")

	snap := m.Snapshot()
	want := []string{"first", "kill w0", "respawn w0", "last"}
	if len(snap.Events) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(snap.Events), snap.Events, want)
	}
	for i, w := range want {
		if snap.Events[i] != w {
			t.Fatalf("event[%d] = %q, want %q (all: %v)", i, snap.Events[i], w, snap.Events)
		}
	}
	if snap.Kills != 1 || snap.Respawns != 1 {
		t.Fatalf("kills/respawns = %d/%d, want 1/1", snap.Kills, snap.Respawns)
	}
}

// TestMonitorEventRingWraparound: pushing past the cap keeps exactly
// the newest monitorEventCap events, still oldest first.
func TestMonitorEventRingWraparound(t *testing.T) {
	m := NewMonitor()
	total := monitorEventCap*3 + 7
	for i := 0; i < total; i++ {
		m.Note(fmt.Sprintf("e%d", i))
	}
	snap := m.Snapshot()
	if len(snap.Events) != monitorEventCap {
		t.Fatalf("ring holds %d events, want cap %d", len(snap.Events), monitorEventCap)
	}
	// The survivors are the last monitorEventCap notes, in order.
	for i, ev := range snap.Events {
		want := fmt.Sprintf("e%d", total-monitorEventCap+i)
		if ev != want {
			t.Fatalf("event[%d] = %q, want %q", i, ev, want)
		}
	}
}

// TestMonitorEventConcurrent hammers the ring from concurrent writers
// while a reader snapshots — the race detector is the real assertion;
// the invariants checked are that a snapshot never exceeds the cap and
// each snapshot's events are internally ordered (a later note from one
// writer never precedes an earlier one).
func TestMonitorEventConcurrent(t *testing.T) {
	m := NewMonitor()
	const writers, perWriter = 8, 200
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := m.Snapshot()
			if len(snap.Events) > monitorEventCap {
				t.Errorf("snapshot holds %d events, cap %d", len(snap.Events), monitorEventCap)
				return
			}
			// Per-writer sequence numbers must be increasing within one
			// snapshot.
			last := map[byte]int{}
			for _, ev := range snap.Events {
				var w byte
				var seq int
				if _, err := fmt.Sscanf(ev, "w%c-%d", &w, &seq); err != nil {
					continue
				}
				if prev, ok := last[w]; ok && seq <= prev {
					t.Errorf("writer %c out of order: %d after %d (%v)", w, seq, prev, snap.Events)
					return
				}
				last[w] = seq
			}
		}
	}()

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				m.Note(fmt.Sprintf("w%c-%d", 'a'+byte(w), i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	snap := m.Snapshot()
	if len(snap.Events) != monitorEventCap {
		t.Fatalf("after %d notes ring holds %d, want %d", writers*perWriter, len(snap.Events), monitorEventCap)
	}
}
