package portfolio

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

// TestAgreementBruteForce: the portfolio verdict matches exhaustive
// enumeration on small random formulas, and returned models satisfy the
// formula. Run under -race this also exercises the sharing pool.
func TestAgreementBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		n := 6 + int(seed%7)
		f := gen.RandomKSAT(n, int(float64(n)*4.3), 3, seed)
		want, _ := cnf.BruteForce(f)
		res := Solve(context.Background(), f, Options{Workers: 4, Seed: seed})
		if res.Status == solver.Unknown {
			t.Fatalf("seed %d: portfolio returned Unknown without budget or cancel", seed)
		}
		if got := res.Status == solver.Sat; got != want {
			t.Fatalf("seed %d: portfolio=%v brute=%v", seed, res.Status, want)
		}
		if res.Status == solver.Sat && !res.Model.Satisfies(f) {
			t.Fatalf("seed %d: returned model does not satisfy the formula", seed)
		}
		if res.Winner < 0 || res.Recipe == "" {
			t.Fatalf("seed %d: missing winner attribution: %+v", seed, res)
		}
	}
}

// TestDeterminismSingleWorker: Workers=1 reproduces the sequential
// solver exactly — verdict, model and search statistics.
func TestDeterminismSingleWorker(t *testing.T) {
	base := solver.Options{Seed: 42, RandomFreq: 0.05}
	f := gen.Queens(10)
	seq := solver.FromFormula(f, base)
	seqSt := seq.Solve()

	res := Solve(context.Background(), f, Options{Workers: 1, Base: base})
	if res.Status != seqSt {
		t.Fatalf("portfolio=%v sequential=%v", res.Status, seqSt)
	}
	if res.Winner != 0 || res.Workers[0].Recipe != "base" {
		t.Fatalf("worker 0 must win with the base recipe: %+v", res)
	}
	ws, ss := res.Workers[0].Stats, seq.Stats
	if ws != ss {
		t.Fatalf("stats diverge:\nportfolio:  %+v\nsequential: %+v", ws, ss)
	}
	seqModel := seq.Model()
	for v := cnf.Var(1); int(v) <= f.NumVars(); v++ {
		if res.Model.Value(v) != seqModel.Value(v) {
			t.Fatalf("model diverges at variable %d", v)
		}
	}
	// And the same run twice is bit-identical.
	res2 := Solve(context.Background(), f, Options{Workers: 1, Base: base})
	if res2.Workers[0].Stats != ws {
		t.Fatal("two identical single-worker runs diverged")
	}
}

// TestUnsatRace: every worker ultimately agrees UNSAT; first answer
// wins and losers are interrupted, not left running.
func TestUnsatRace(t *testing.T) {
	f := gen.Pigeonhole(7)
	start := time.Now()
	res := Solve(context.Background(), f, Options{Workers: 4})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(7) must be UNSAT, got %v", res.Status)
	}
	if len(res.Workers) != 4 {
		t.Fatalf("expected 4 worker reports, got %d", len(res.Workers))
	}
	for _, w := range res.Workers {
		if w.Status == solver.Sat {
			t.Fatalf("worker %d claims SAT on an UNSAT instance", w.ID)
		}
	}
	if time.Since(start) > time.Minute {
		t.Fatal("losers were not cancelled in a reasonable time")
	}
}

// TestClauseSharing: on a conflict-heavy instance with restarts, the
// pool sees exports and at least one worker imports foreign clauses.
func TestClauseSharing(t *testing.T) {
	f := gen.Pigeonhole(7)
	res := Solve(context.Background(), f, Options{
		Workers: 4,
		Base:    solver.Options{RestartBase: 30},
	})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(7) must be UNSAT, got %v", res.Status)
	}
	if res.SharedExported == 0 {
		t.Fatal("no clauses reached the shared pool")
	}
	var imported int64
	for _, w := range res.Workers {
		imported += w.Stats.Imported
	}
	if imported == 0 {
		t.Fatal("no worker imported any shared clause")
	}
	// NoShare must keep the pool empty.
	res = Solve(context.Background(), f, Options{Workers: 2, NoShare: true})
	if res.SharedExported != 0 {
		t.Fatal("NoShare still exported clauses")
	}
}

// TestAssumptionsAndCore: portfolio solving under assumptions returns
// the winner's conflict core over the assumptions.
func TestAssumptionsAndCore(t *testing.T) {
	// (x1 ∨ x2) with assumptions ¬x1, ¬x2: UNSAT with both in the core.
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	res := Solve(context.Background(), f, Options{Workers: 2},
		cnf.NegLit(1), cnf.NegLit(2))
	if res.Status != solver.Unsat {
		t.Fatalf("got %v, want Unsat under assumptions", res.Status)
	}
	if len(res.Core) == 0 {
		t.Fatal("missing conflict core")
	}
	for _, l := range res.Core {
		if l != cnf.NegLit(1) && l != cnf.NegLit(2) {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	// Satisfiable under the opposite assumptions.
	res = Solve(context.Background(), f, Options{Workers: 2}, cnf.PosLit(1))
	if res.Status != solver.Sat || res.Model.Value(1) != cnf.True {
		t.Fatalf("expected SAT with x1=true, got %v", res.Status)
	}
}

// TestCancellation: a cancelled context interrupts every worker and the
// portfolio reports Unknown.
func TestCancellation(t *testing.T) {
	f := gen.Pigeonhole(10) // too hard to finish before the cancel
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Solve(ctx, f, Options{Workers: 4})
	if res.Status != solver.Unknown || res.Winner != -1 {
		t.Fatalf("cancelled run must be Unknown with no winner: %+v", res.Status)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancellation did not propagate promptly")
	}

	// Already-cancelled context: immediate Unknown.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	res = Solve(done, f, Options{Workers: 2})
	if res.Status != solver.Unknown {
		t.Fatalf("pre-cancelled run returned %v", res.Status)
	}
}

// TestBudgetExhaustion: per-worker conflict budgets yield Unknown
// without hanging when nobody can answer.
func TestBudgetExhaustion(t *testing.T) {
	f := gen.Pigeonhole(9)
	res := Solve(context.Background(), f, Options{
		Workers: 3,
		Base:    solver.Options{MaxConflicts: 50},
	})
	if res.Status != solver.Unknown {
		t.Fatalf("got %v, want Unknown on exhausted budgets", res.Status)
	}
	for _, w := range res.Workers {
		if w.Status != solver.Unknown {
			t.Fatalf("worker %d returned %v under a 50-conflict budget", w.ID, w.Status)
		}
	}
}

// TestDefaultWorkerCount: Workers=0 resolves to GOMAXPROCS and still
// answers correctly.
func TestDefaultWorkerCount(t *testing.T) {
	f := gen.XorChain(20, true, 3) // UNSAT xor chain
	res := Solve(context.Background(), f, Options{})
	if res.Status != solver.Unsat {
		t.Fatalf("xor chain must be UNSAT, got %v", res.Status)
	}
	if len(res.Workers) == 0 {
		t.Fatal("no worker reports")
	}
}

// TestDiversifyStable: recipes are deterministic in the worker index
// and leave worker 0 untouched.
func TestDiversifyStable(t *testing.T) {
	base := solver.Options{Seed: 5}
	o0, name0 := diversify(0, base, 9)
	if name0 != "base" || !reflect.DeepEqual(o0, base) {
		t.Fatalf("worker 0 must run the base options unchanged (%s)", name0)
	}
	for i := 1; i < 20; i++ {
		a, an := diversify(i, base, 9)
		b, bn := diversify(i, base, 9)
		if !reflect.DeepEqual(a, b) || an != bn {
			t.Fatalf("diversify(%d) is not deterministic", i)
		}
		if a.Seed == base.Seed {
			t.Fatalf("worker %d did not get a distinct seed", i)
		}
	}
}

// TestDiversifyWrapAround: workers beyond the recipe table must not
// duplicate their first-lap twin — PRNG-free recipes gain a nonzero
// RandomFreq so the fresh seed changes the search.
func TestDiversifyWrapAround(t *testing.T) {
	base := solver.Options{}
	for _, i := range []int{8, 9, 11, 14, 16} {
		o, _ := diversify(i, base, 0)
		twin, _ := diversify(i%8, base, 0)
		if o.RandomFreq == 0 {
			t.Fatalf("wrap-around worker %d has RandomFreq 0: identical to worker %d", i, i%8)
		}
		if reflect.DeepEqual(o, twin) {
			t.Fatalf("worker %d duplicates worker %d exactly", i, i%8)
		}
	}
}

// TestBaseWorkerShares: with the zero-value Base the base worker must
// restart (Luby default) and therefore import sibling clauses — sharing
// must not be inert for worker 0.
func TestBaseWorkerShares(t *testing.T) {
	res := Solve(context.Background(), gen.Pigeonhole(7), Options{Workers: 4})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(7) must be UNSAT, got %v", res.Status)
	}
	w0 := res.Workers[0]
	if w0.Stats.Restarts == 0 {
		t.Fatal("base worker never restarted under the default options " +
			"(zero-value Restart must be Luby, or worker 0 never imports)")
	}
}

// TestWrapAroundRecipeNames: winner attribution must distinguish
// wrap-around workers from their first-lap twins.
func TestWrapAroundRecipeNames(t *testing.T) {
	_, lap0 := diversify(1, solver.Options{}, 0)
	_, lap1 := diversify(9, solver.Options{}, 0)
	if lap0 == lap1 {
		t.Fatalf("worker 9 reports recipe %q, indistinguishable from worker 1", lap1)
	}
	if lap1 != "geometric+rnd#1" {
		t.Fatalf("unexpected wrap-around name %q", lap1)
	}
}

// TestPoolDuplicateOriginSkip: a worker whose export deduplicated
// against a sibling's earlier copy must not be handed that copy back.
func TestPoolDuplicateOriginSkip(t *testing.T) {
	p := newPool(0, 3, 0)
	for slot := 0; slot < 3; slot++ {
		p.openSlot(slot, 0)
	}
	c := cnf.NewClause(1, 2)
	fp, _ := fingerprint(c, nil)
	p.add(0, 0, c, 2, fp)
	// Worker 1 derived the same clause itself, permuted: the literal-set
	// fingerprint must deduplicate it.
	perm := cnf.Clause{c[1], c[0]}
	fp2, _ := fingerprint(perm, nil)
	if fp2 != fp {
		t.Fatal("fingerprint must be permutation-invariant")
	}
	p.add(1, 0, perm, 2, fp2)
	if got := p.drain(0, 0); len(got) != 0 {
		t.Fatalf("worker 0 re-imported its own clause: %v", got)
	}
	if got := p.drain(1, 0); len(got) != 0 {
		t.Fatalf("worker 1 re-imported a clause it derived: %v", got)
	}
	if got := p.drain(2, 0); len(got) != 1 {
		t.Fatalf("worker 2 must see the clause once, got %v", got)
	}
	st := p.stats()
	if st.Admitted != 1 || st.Duplicates != 1 {
		t.Fatalf("admitted=%d duplicates=%d, want 1 and 1", st.Admitted, st.Duplicates)
	}
	// A respawned occupant of slot 1 (generation 1) is a different
	// solver: it DOES import its predecessor's clause.
	p.openSlot(1, 1)
	if got := p.drain(1, 1); len(got) != 1 {
		t.Fatalf("respawned slot 1 must inherit the pool, got %v", got)
	}
}
