package portfolio

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

// churnOpts is the kill/respawn-heavy stress configuration: a 1ms grace
// period with KillBelow ≥ 1 makes the supervisor kill everything but
// the momentary leader at every sample.
func churnOpts(workers int) Options {
	return Options{
		Workers:     workers,
		Adaptive:    true,
		Grace:       time.Millisecond,
		KillBelow:   2,
		MaxRespawns: 8,
	}
}

// genMix is the full internal/gen instance family mix used by the
// differential tests: hard random, pigeonhole, parity chains (both
// polarities), colouring, queens and the equivalence workloads.
func genMix() []struct {
	name string
	f    *cnf.Formula
} {
	return []struct {
		name string
		f    *cnf.Formula
	}{
		{"ksat-small", gen.RandomKSAT(14, 60, 3, 1)},
		{"3sat-hard", gen.Random3SATHard(60, 2)},
		{"php5", gen.Pigeonhole(5)},
		{"php6", gen.Pigeonhole(6)},
		{"xor-unsat", gen.XorChain(14, true, 3)},
		{"xor-sat", gen.XorChain(14, false, 4)},
		{"color", gen.GraphColoring(12, 28, 3, 5)},
		{"queens6", gen.Queens(6)},
		{"ladder", gen.EquivalenceLadder(20, 12, 6)},
		{"dup-equiv", gen.DuplicateWithEquivalences(gen.RandomKSAT(10, 42, 3, 7), 8)},
	}
}

// TestAdaptiveAgreesWithSequential is the scheduling differential: the
// adaptive portfolio — including a kill/respawn-heavy configuration —
// must agree with the sequential solver on SAT/UNSAT over the full
// instance mix, and Sat models must satisfy the formula. Run under
// -race in CI, this also exercises supervisor/worker/pool interleaving.
func TestAdaptiveAgreesWithSequential(t *testing.T) {
	for _, inst := range genMix() {
		seq := solver.FromFormula(inst.f, solver.Options{})
		want := seq.Solve()
		if want == solver.Unknown {
			t.Fatalf("%s: sequential reference returned Unknown", inst.name)
		}
		for _, cfg := range []struct {
			name string
			opts Options
		}{
			{"adaptive", Options{Workers: 4, Adaptive: true, Grace: 20 * time.Millisecond, Seed: 1}},
			{"churn", churnOpts(4)},
		} {
			res := Solve(context.Background(), inst.f, cfg.opts)
			if res.Status != want {
				t.Fatalf("%s/%s: portfolio=%v sequential=%v", inst.name, cfg.name, res.Status, want)
			}
			if res.Status == solver.Sat && !res.Model.Satisfies(inst.f) {
				t.Fatalf("%s/%s: returned model does not satisfy the formula", inst.name, cfg.name)
			}
			if res.Winner < 0 || res.Recipe == "" {
				t.Fatalf("%s/%s: missing winner attribution: %+v", inst.name, cfg.name, res.Status)
			}
			if res.Workers[res.Winner].Reason != "winner" {
				t.Fatalf("%s/%s: winner report reason = %q", inst.name, cfg.name, res.Workers[res.Winner].Reason)
			}
		}
	}
}

// TestAdaptiveKillHeavyNeverLosesWinner: under a tiny grace period and
// an aggressive threshold the supervisor churns workers constantly, yet
// the portfolio must still decide PHP (never Unknown — a kill can never
// lose a winner, and the last live worker is never killed) and must
// record the full lineage.
func TestAdaptiveKillHeavyNeverLosesWinner(t *testing.T) {
	res := Solve(context.Background(), gen.Pigeonhole(7), churnOpts(4))
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(7) must be UNSAT under churn, got %v (kills %d respawns %d)",
			res.Status, res.Kills, res.Respawns)
	}
	if res.Kills == 0 || res.Respawns == 0 {
		t.Fatalf("churn configuration produced no churn: kills %d respawns %d", res.Kills, res.Respawns)
	}
	if len(res.Workers) != 4+res.Respawns {
		t.Fatalf("lineage incomplete: %d reports for 4 slots + %d respawns", len(res.Workers), res.Respawns)
	}
	sawGen1, sawKilled := false, false
	for i, w := range res.Workers {
		if w.ID != i {
			t.Fatalf("reports not in spawn order: index %d has ID %d", i, w.ID)
		}
		if w.Slot < 0 || w.Slot >= 4 {
			t.Fatalf("worker %d reports slot %d", i, w.Slot)
		}
		if w.Gen > 0 {
			sawGen1 = true
		}
		switch w.Reason {
		case "killed-slow", "retired":
			sawKilled = true
			if w.Status != solver.Unknown {
				t.Fatalf("worker %d killed yet reported %v — a definitive answer must trump a kill", i, w.Status)
			}
		case "winner", "interrupted", "":
		default:
			t.Fatalf("worker %d has unknown reason %q", i, w.Reason)
		}
	}
	if !sawGen1 || !sawKilled {
		t.Fatalf("lineage lacks respawned (gen>0: %v) or killed (%v) workers", sawGen1, sawKilled)
	}
}

// TestAdaptiveCancellation: cancelling the context mid-churn must
// interrupt every worker — including freshly respawned ones — and
// return Unknown promptly, never deadlocking the scheduling loop.
func TestAdaptiveCancellation(t *testing.T) {
	f := gen.Pigeonhole(10) // too hard to finish before the cancel
	for _, delay := range []time.Duration{5 * time.Millisecond, 40 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		start := time.Now()
		res := Solve(ctx, f, churnOpts(4))
		if res.Status != solver.Unknown || res.Winner != -1 {
			t.Fatalf("cancelled churn run must be Unknown with no winner: %v", res.Status)
		}
		if time.Since(start) > 30*time.Second {
			t.Fatal("cancellation did not propagate promptly through the scheduler")
		}
		cancel()
	}

	// Already-cancelled context: immediate Unknown, no respawn storm.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	res := Solve(done, f, churnOpts(2))
	if res.Status != solver.Unknown {
		t.Fatalf("pre-cancelled churn run returned %v", res.Status)
	}
	if res.Respawns != 0 {
		t.Fatalf("pre-cancelled run respawned %d workers", res.Respawns)
	}
}

// TestAdaptiveSingleWorkerDeterminism: Adaptive with Workers: 1 is the
// sequential solver bit for bit — the supervisor and the pool must both
// disengage, exactly as with static scheduling.
func TestAdaptiveSingleWorkerDeterminism(t *testing.T) {
	base := solver.Options{Seed: 42, RandomFreq: 0.05}
	f := gen.Queens(10)
	seq := solver.FromFormula(f, base)
	seqSt := seq.Solve()

	res := Solve(context.Background(), f, Options{
		Workers: 1, Adaptive: true, Grace: time.Millisecond, KillBelow: 5, Base: base,
	})
	if res.Status != seqSt {
		t.Fatalf("portfolio=%v sequential=%v", res.Status, seqSt)
	}
	if res.Kills != 0 || res.Respawns != 0 {
		t.Fatalf("single-worker adaptive run scheduled: kills %d respawns %d", res.Kills, res.Respawns)
	}
	if res.Workers[0].Stats != seq.Stats {
		t.Fatalf("stats diverge:\nportfolio:  %+v\nsequential: %+v", res.Workers[0].Stats, seq.Stats)
	}
}

// TestAdaptiveUnderAssumptions: the adaptive path preserves
// assumption-core extraction across kills and respawns.
func TestAdaptiveUnderAssumptions(t *testing.T) {
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	res := Solve(context.Background(), f, churnOpts(2), cnf.NegLit(1), cnf.NegLit(2))
	if res.Status != solver.Unsat {
		t.Fatalf("got %v, want Unsat under assumptions", res.Status)
	}
	if len(res.Core) == 0 {
		t.Fatal("missing conflict core")
	}
	for _, l := range res.Core {
		if l != cnf.NegLit(1) && l != cnf.NegLit(2) {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
}

// TestProofWorkerTopology: a proof-requesting base designates worker 0
// as the proof worker — it must stay out of the shared pool entirely
// (no imports, which would poison the refutation, and no exports, whose
// idle cursor would pin the pool backlog) — while its siblings race
// with sharing intact. When the proof worker's verdict is the one
// adopted, Result.Proved is set and the stream must verify.
func TestProofWorkerTopology(t *testing.T) {
	f := gen.Pigeonhole(6)
	sink := &solver.Proof{}
	res := Solve(context.Background(), f, Options{
		Workers: 3,
		Base:    solver.Options{Proof: sink},
	})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(6) must be UNSAT, got %v", res.Status)
	}
	for _, w := range res.Workers {
		if w.Slot == 0 && (w.Stats.Exported != 0 || w.Stats.Imported != 0) {
			t.Fatalf("proof worker touched the shared pool: %+v", w.Stats)
		}
	}
	if res.Proved {
		if err := solver.VerifyUnsat(f, sink); err != nil {
			t.Fatalf("Proved result but stream fails verification: %v", err)
		}
	}
}

// TestProofWorkerWinsAlone: with a single worker, proof mode must stay
// bit-for-bit the sequential solver and the verdict is always Proved.
func TestProofWorkerWinsAlone(t *testing.T) {
	f := gen.Pigeonhole(5)
	sink := &solver.Proof{}
	res := Solve(context.Background(), f, Options{
		Workers: 1,
		Base:    solver.Options{Proof: sink},
	})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(5) must be UNSAT, got %v", res.Status)
	}
	if !res.Proved {
		t.Fatal("single-worker UNSAT must be Proved")
	}
	if sink.NumLemmas() == 0 {
		t.Fatal("no lemmas streamed")
	}
	if err := solver.VerifyUnsat(f, sink); err != nil {
		t.Fatalf("proof stream rejected: %v", err)
	}
}

// TestProofWorkerKillExempt: under an adaptive schedule aggressive
// enough to kill every non-leader at every sample, slot 0 must never be
// killed or respawned while a proof is being streamed — abandoning the
// stream mid-refutation would leave the verdict uncertifiable.
func TestProofWorkerKillExempt(t *testing.T) {
	sink := &solver.Proof{}
	res := Solve(context.Background(), gen.Pigeonhole(7), Options{
		Workers:   3,
		Adaptive:  true,
		Grace:     time.Millisecond,
		KillBelow: 2, // kill everything but the leader at every tick
		Base:      solver.Options{Proof: sink},
	})
	if res.Status != solver.Unsat {
		t.Fatalf("PHP(7) must be UNSAT, got %v", res.Status)
	}
	for _, w := range res.Workers {
		if w.Slot != 0 {
			continue
		}
		if w.Gen != 0 {
			t.Fatalf("proof slot was respawned: %+v", w)
		}
		if w.Reason == "killed-slow" || w.Reason == "retired" {
			t.Fatalf("proof worker was killed: %+v", w)
		}
	}
}

// TestRespawnDeterministicPerSeed: the recipe drawn for a given (spawn
// index, slot, generation, exploit hint) is a pure function of those
// inputs and the seeds — kill timing decides which draws happen, but a
// recorded lineage pins every recipe and seed that ran.
func TestRespawnDeterministicPerSeed(t *testing.T) {
	base := solver.Options{Seed: 11}
	seeds := map[int64]int{} // PRNG seed → spawn index (unique per spawn)
	for gen := 1; gen <= 6; gen++ {
		for exploitIdx := -1; exploitIdx < len(recipes); exploitIdx++ {
			spawnIdx := 4 + gen
			a, an, ai := respawn(spawnIdx, 2, gen, base, 9, exploitIdx)
			b, bn, bi := respawn(spawnIdx, 2, gen, base, 9, exploitIdx)
			if an != bn || ai != bi || !reflect.DeepEqual(a, b) {
				t.Fatalf("respawn(%d,2,%d,%d) not deterministic", spawnIdx, gen, exploitIdx)
			}
			if a.Seed == base.Seed {
				t.Fatalf("respawned worker kept the base seed (gen %d)", gen)
			}
			if a.RandomFreq == 0 {
				t.Fatalf("respawned recipe %s has no randomization: fresh seed is inert", an)
			}
			if prev, dup := seeds[a.Seed]; dup && prev != spawnIdx {
				t.Fatalf("seed collision between spawn %d and spawn %d", prev, spawnIdx)
			}
			seeds[a.Seed] = spawnIdx
			if gen%2 == 1 && exploitIdx >= 0 && ai != exploitIdx {
				t.Fatalf("odd generation must exploit recipe %d, picked %d", exploitIdx, ai)
			}
		}
	}
}
