package portfolio

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cnf"
)

// mkClause builds an n-literal clause over distinct variables starting
// at base, and its fingerprint.
func mkClause(base, n int) (cnf.Clause, uint64) {
	c := make(cnf.Clause, n)
	for i := range c {
		c[i] = cnf.PosLit(cnf.Var(base + i))
	}
	fp, _ := fingerprint(c, nil)
	return c, fp
}

// TestPoolClosedSlotGuard is the teardown regression: an export or
// import offered by a worker whose slot the supervisor already closed
// (or respawned at a later generation) must be refused without panic,
// without touching the log and without corrupting any cursor.
func TestPoolClosedSlotGuard(t *testing.T) {
	p := newPool(16, 2, 1)
	p.openSlot(0, 0)
	p.openSlot(1, 0)
	c0, fp0 := mkClause(1, 3)
	if !p.add(0, 0, c0, 2, fp0) {
		t.Fatal("live slot export refused")
	}

	// Slot 0 dies. Its in-flight export and import must bounce.
	p.closeSlot(0)
	c1, fp1 := mkClause(10, 3)
	if p.add(0, 0, c1, 2, fp1) {
		t.Fatal("closed-slot export accepted; the dying worker should stop exporting")
	}
	if got := p.drain(0, 0); got != nil {
		t.Fatalf("closed-slot drain returned clauses: %v", got)
	}

	// Slot 0 respawns at generation 1: the stale generation stays
	// locked out even though the slot is open again.
	p.openSlot(0, 1)
	if p.add(0, 0, c1, 2, fp1) {
		t.Fatal("stale-generation export accepted after respawn")
	}
	if got := p.drain(0, 0); got != nil {
		t.Fatalf("stale-generation drain returned clauses: %v", got)
	}
	// The new generation inherits the pool from the oldest entry.
	if got := p.drain(0, 1); len(got) != 0 {
		// c0 was exported by slot 0 gen 0 — a different worker than
		// slot 0 gen 1, so the successor MAY import it.
		if len(got) != 1 {
			t.Fatalf("respawned slot drained %d clauses, want 1", len(got))
		}
	} else {
		t.Fatal("respawned slot did not inherit its predecessor's clause")
	}
	// Slot 1 was untouched by all of the above: exactly one clause.
	if got := p.drain(1, 0); len(got) != 1 {
		t.Fatalf("slot 1 cursor corrupted: drained %d clauses, want 1", len(got))
	}
	st := p.stats()
	if st.Admitted != 1 {
		t.Fatalf("late offers must not be admitted: admitted=%d", st.Admitted)
	}
	if st.Rejected != 2 {
		t.Fatalf("late offers must be counted rejected: rejected=%d, want 2", st.Rejected)
	}
	// Out-of-range slots (defensive: no such worker should exist) are
	// refused, never a panic.
	if p.add(-1, 0, c1, 2, fp1) || p.add(99, 0, c1, 2, fp1) {
		t.Fatal("out-of-range slot accepted")
	}
	if p.drain(-1, 0) != nil || p.drain(99, 0) != nil {
		t.Fatal("out-of-range drain returned clauses")
	}
}

// TestPoolClosedSlotGuardConcurrent hammers add/drain from "dying"
// workers while the supervisor churns the slot open/closed; run under
// -race this pins the teardown path against data races and cursor
// corruption.
func TestPoolClosedSlotGuardConcurrent(t *testing.T) {
	p := newPool(64, 4, 1)
	for s := 0; s < 4; s++ {
		p.openSlot(s, 0)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var scratch []cnf.Lit
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := cnf.Clause{cnf.PosLit(cnf.Var(slot*100 + i%50 + 1)), cnf.NegLit(cnf.Var(i%7 + 1))}
				var fp uint64
				fp, scratch = fingerprint(c, scratch)
				p.add(slot, i%3, c, 2+i%5, fp) // mostly stale generations
				p.drain(slot, i%3)
			}
		}(s)
	}
	// Supervisor: churn generations.
	for gen := 1; gen <= 200; gen++ {
		slot := gen % 4
		p.closeSlot(slot)
		p.openSlot(slot, gen%3)
	}
	close(stop)
	wg.Wait()
	st := p.stats()
	if st.Held > 64 {
		t.Fatalf("pool overflowed its cap under churn: held %d", st.Held)
	}
}

// TestPoolDynamicAdmission drives the three admission regimes: cold
// start admits everything, a full unread backlog tightens the LBD
// threshold toward the best recent clauses, and draining the backlog
// relaxes it again.
func TestPoolDynamicAdmission(t *testing.T) {
	const cap = 64
	p := newPool(cap, 2, 0.5)
	p.openSlot(0, 0)
	p.openSlot(1, 0) // slot 1 never drains: its cursor holds the backlog up

	// Cold start: even terrible LBDs are admitted while the window has
	// fewer than admissionMinSamples entries.
	for i := 0; i < admissionMinSamples; i++ {
		c, fp := mkClause(i*10+1, 4)
		if !p.add(0, 0, c, 30, fp) {
			t.Fatalf("cold-start offer %d refused", i)
		}
	}
	if st := p.stats(); st.Admitted != admissionMinSamples {
		t.Fatalf("cold start admitted %d, want %d", st.Admitted, admissionMinSamples)
	}

	// Load the pool well past the low-water mark with good clauses so
	// the window learns a tight distribution and the backlog pressure
	// engages.
	next := 1000
	for i := 0; p.stats().Held < cap; i++ {
		c, fp := mkClause(next, 4)
		next += 10
		p.add(0, 0, c, 2+i%2, fp)
	}
	st := p.stats()
	if st.Threshold == 0 {
		t.Fatalf("full backlog must engage the threshold: %+v", st)
	}
	// Under pressure a junk clause must be rejected...
	cj, fpj := mkClause(next, 4)
	next += 10
	if p.add(0, 0, cj, 40, fpj) {
		// add returns true (keep offering) — rejection shows in stats.
	}
	rejBefore := p.stats().Rejected
	if rejBefore == 0 {
		t.Fatalf("high-LBD offer admitted under full backlog: %+v", p.stats())
	}
	// ...while a glue clause still gets in (evicting the oldest).
	cg, fpg := mkClause(next, 4)
	next += 10
	p.add(0, 0, cg, 1, fpg)
	st = p.stats()
	if st.Evicted == 0 {
		t.Fatalf("admission at cap must evict: %+v", st)
	}
	if st.Held > cap {
		t.Fatalf("pool exceeded its cap: %+v", st)
	}

	// Drain both readers: backlog falls below the low-water mark and
	// admission relaxes back to admit-everything — a junk clause gets
	// in again. (stats().Threshold keeps reporting the last bound that
	// engaged; relaxation shows in behavior, not in that diagnostic.)
	p.drain(0, 0)
	p.drain(1, 0)
	cr, fpr := mkClause(next, 4)
	adBefore := p.stats().Admitted
	p.add(0, 0, cr, 35, fpr)
	st = p.stats()
	if st.Admitted != adBefore+1 {
		t.Fatalf("relaxed pool refused a clause: %+v", st)
	}
	if st.Threshold == 0 {
		t.Fatalf("end-of-run threshold diagnostic lost the engaged bound: %+v", st)
	}
}

// TestPoolEvictionCursorClamp: a reader whose cursor fell behind the
// eviction point skips ahead instead of reading freed entries.
func TestPoolEvictionCursorClamp(t *testing.T) {
	const cap = 8
	p := newPool(cap, 2, 1)
	p.openSlot(0, 0)
	p.openSlot(1, 0)
	// Slot 0 fills the pool several times over; slot 1 never reads.
	for i := 0; i < 4*cap; i++ {
		c, fp := mkClause(i*10+1, 2)
		p.add(0, 0, c, 1, fp)
	}
	st := p.stats()
	if st.Held > cap {
		t.Fatalf("held %d > cap %d", st.Held, cap)
	}
	if st.Evicted == 0 {
		t.Fatal("no evictions after overfilling")
	}
	got := p.drain(1, 0)
	if len(got) != st.Held {
		t.Fatalf("lagging reader drained %d, want the %d held entries", len(got), st.Held)
	}
	for _, c := range got {
		if len(c) != 2 {
			t.Fatalf("drained corrupted clause %v", c)
		}
	}
	// A second drain sees nothing new.
	if again := p.drain(1, 0); len(again) != 0 {
		t.Fatalf("cursor did not advance: %d", len(again))
	}
}

// TestPoolEvictionReadmission: eviction forgets the fingerprint, so an
// evicted clause may be admitted again later (the pool holds a window,
// not a set, of the learnt stream).
func TestPoolEvictionReadmission(t *testing.T) {
	p := newPool(4, 1, 1)
	p.openSlot(0, 0)
	c, fp := mkClause(1, 2)
	p.add(0, 0, c, 1, fp)
	for i := 0; i < 8; i++ { // push it out
		d, fpd := mkClause(100+i*10, 2)
		p.add(0, 0, d, 1, fpd)
	}
	if !p.add(0, 0, c, 1, fp) {
		t.Fatal("add refused")
	}
	if st := p.stats(); st.Duplicates != 0 {
		t.Fatalf("evicted clause treated as duplicate: %+v", st)
	}
}

// TestPoolStatsString sanity-checks that stats counters partition the
// offer stream: every offer is admitted, rejected or a duplicate.
func TestPoolStatsPartition(t *testing.T) {
	p := newPool(16, 2, 0.5)
	p.openSlot(0, 0)
	p.openSlot(1, 0)
	offers := 0
	for i := 0; i < 200; i++ {
		c, fp := mkClause(i%40*10+1, 3)
		p.add(i%2, 0, c, 1+i%12, fp)
		offers++
	}
	st := p.stats()
	if st.Admitted+st.Rejected+st.Duplicates != int64(offers) {
		t.Fatalf("counters do not partition %d offers: %+v", offers, st)
	}
	_ = fmt.Sprintf("%+v", st) // PoolStats must be printable for -stats
}
