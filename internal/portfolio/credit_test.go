package portfolio

import (
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// TestSupervisorCreditsPoolContribution pins the ROADMAP follow-up: the
// kill criterion credits a worker's admitted pool exports, not just its
// own conflict rate. A worker with few conflicts of its own but a large
// admitted-export contribution must clear the default KillBelow
// threshold against a high-conflict leader — i.e. it survives — while
// the same worker without the credit would be killed.
func TestSupervisorCreditsPoolContribution(t *testing.T) {
	const age = 10.0 // seconds; identical for both workers
	killBelow := 0.25

	leader := solver.Progress{Conflicts: 1000}
	hub := solver.Progress{Conflicts: 50} // barely searching on its own

	leaderScore := progressScore(leader, 0, age)
	// Without any contribution the hub is clearly below the bar.
	if s := progressScore(hub, 0, age); s >= killBelow*leaderScore {
		t.Fatalf("uncredited hub score %.2f should fall below %.2f", s, killBelow*leaderScore)
	}
	// With 300 admitted exports the credit lifts it above the bar.
	if s := progressScore(hub, 300, age); s < killBelow*leaderScore {
		t.Fatalf("credited hub score %.2f should survive the %.2f bar", s, killBelow*leaderScore)
	}
	// Glue quality still scales the credited score the same way it
	// scales raw conflicts.
	glueHub := hub
	glueHub.LBDHist[0] = 50 // every clause glue
	if progressScore(glueHub, 300, age) <= progressScore(hub, 300, age) {
		t.Fatal("glue share should scale a credited score upward")
	}
}

// TestPoolSlotAdmittedCounters pins what the supervisor credit reads:
// only genuinely admitted clauses count, the counter is scoped to the
// slot's current (open, generation) occupant, and reopening resets it.
func TestPoolSlotAdmittedCounters(t *testing.T) {
	p := newPool(8, 2, 1) // quantile 1: no dynamic threshold in the way
	p.openSlot(0, 0)
	p.openSlot(1, 0)

	var scratch []cnf.Lit
	offer := func(slot int, lits ...int) bool {
		c := cnf.NewClause(lits...)
		fp, s := fingerprint(c, scratch)
		scratch = s
		return p.add(slot, 0, c, 2, fp)
	}

	offer(0, 1, 2)
	offer(0, 3, 4)
	offer(1, 1, 2) // duplicate of slot 0's export: not an admission
	if got := p.slotAdmitted(0, 0); got != 2 {
		t.Fatalf("slot 0 admitted = %d, want 2", got)
	}
	if got := p.slotAdmitted(1, 0); got != 0 {
		t.Fatalf("slot 1 admitted = %d, want 0 (duplicate only)", got)
	}

	// Closed slot reads 0 (the supervisor only rates live workers).
	p.closeSlot(0)
	if got := p.slotAdmitted(0, 0); got != 0 {
		t.Fatalf("closed slot admitted = %d, want 0", got)
	}
	// A respawned occupant starts from zero and a stale generation
	// cannot read the new occupant's counter.
	p.openSlot(0, 1)
	if got := p.slotAdmitted(0, 1); got != 0 {
		t.Fatalf("reopened slot admitted = %d, want 0", got)
	}
	offer2 := func(slot, gen int, lits ...int) {
		c := cnf.NewClause(lits...)
		fp, s := fingerprint(c, scratch)
		scratch = s
		p.add(slot, gen, c, 2, fp)
	}
	offer2(0, 1, 5, 6)
	if got := p.slotAdmitted(0, 1); got != 1 {
		t.Fatalf("gen-1 admitted = %d, want 1", got)
	}
	if got := p.slotAdmitted(0, 0); got != 0 {
		t.Fatalf("stale generation admitted = %d, want 0", got)
	}
}

func TestRecipeFamily(t *testing.T) {
	cases := map[string]string{
		"base":                     "base",
		"luby-agile":               "luby-agile",
		"luby-agile+rnd#1":         "luby-agile",
		"geometric/exploit#s2g1":   "geometric",
		"keepall/explore-mem#s0g2": "keepall",
		"relevance/mem":            "relevance",
	}
	for in, want := range cases {
		if got := RecipeFamily(in); got != want {
			t.Errorf("RecipeFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPreferRecipeSeedsSchedule pins the cross-run memory hook: a
// preferred family shows up in worker 1's initial draw and in the
// explore arm of the respawn schedule, while worker 0 and the exploit
// arm are untouched.
func TestPreferRecipeSeedsSchedule(t *testing.T) {
	base := solver.Options{}
	preferIdx := recipeIndex("keepall")
	if preferIdx < 0 {
		t.Fatal("keepall should be a table recipe")
	}

	// Worker 0 is never redirected — the determinism anchor.
	o0, name0, idx0 := diversifyPrefer(0, base, 7, preferIdx)
	plain0, plainName0 := diversify(0, base, 7)
	if idx0 != 0 || name0 != plainName0 || o0.Seed != plain0.Seed || o0.Restart != plain0.Restart {
		t.Fatal("worker 0 must ignore the preference")
	}

	// Worker 1 runs the remembered family, marked as a memory draw.
	_, name1, idx1 := diversifyPrefer(1, base, 7, preferIdx)
	if idx1 != preferIdx || RecipeFamily(name1) != "keepall" || !strings.Contains(name1, "/mem") {
		t.Fatalf("worker 1 draw = %q (idx %d), want keepall/mem", name1, idx1)
	}
	// Everyone else keeps the table walk.
	_, _, idx2 := diversifyPrefer(2, base, 7, preferIdx)
	if idx2 != 2 {
		t.Fatalf("worker 2 idx = %d, want its table entry 2", idx2)
	}

	// Explore arm (even generations): even spawn indices draw the
	// preferred family, odd ones keep walking the table.
	_, nameE, idxE := respawnPrefer(10, 3, 2, base, 7, -1, preferIdx)
	if idxE != preferIdx || !strings.Contains(nameE, "explore-mem") {
		t.Fatalf("even explore draw = %q (idx %d), want preferred family", nameE, idxE)
	}
	_, nameO, idxO := respawnPrefer(11, 3, 2, base, 7, -1, preferIdx)
	if idxO != (11/2)%len(recipes) || strings.Contains(nameO, "explore-mem") {
		t.Fatalf("odd explore draw = %q (idx %d), want half-speed table walk", nameO, idxO)
	}
	// The half-speed walk must reach EVERY table index — the even
	// residues too, which a naive spawnIdx%len walk would never hit
	// from odd spawn indices on an even-length table.
	seen := make(map[int]bool)
	for spawn := 1; spawn < 4*len(recipes); spawn += 2 {
		_, _, idx := respawnPrefer(spawn, 3, 2, base, 7, -1, preferIdx)
		seen[idx] = true
	}
	for i := range recipes {
		if !seen[i] {
			t.Fatalf("explore walk under a hint never reaches recipe %d (%s)", i, recipes[i].name)
		}
	}
	// Exploit arm beats the memory hint: in-run evidence wins.
	_, nameX, idxX := respawnPrefer(10, 3, 1, base, 7, 2, preferIdx)
	if idxX != 2 || !strings.Contains(nameX, "exploit") {
		t.Fatalf("exploit draw = %q (idx %d), want recipe 2", nameX, idxX)
	}
	// No preference: identical to the historical schedule.
	a, an, ai := respawnPrefer(10, 3, 2, base, 7, -1, -1)
	b, bn, bi := respawn(10, 3, 2, base, 7, -1)
	if a.Seed != b.Seed || a.Restart != b.Restart || a.RandomFreq != b.RandomFreq || an != bn || ai != bi {
		t.Fatal("preferIdx -1 must reproduce the plain respawn schedule")
	}
}

// TestPreferRecipeEndToEnd runs a small portfolio with a preference and
// checks the lineage actually contains the seeded family on worker 1,
// and that a Monitor attached to the run saw the workers.
func TestPreferRecipeEndToEnd(t *testing.T) {
	f, err := cnf.ParseDIMACSString("p cnf 6 4\n1 2 0\n-1 3 0\n-3 -2 6 0\n4 5 0\n")
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor()
	res := Solve(t.Context(), f, Options{
		Workers:      3,
		PreferRecipe: "keepall",
		Monitor:      mon,
	})
	if res.Status != solver.Sat {
		t.Fatalf("status %v, want SAT", res.Status)
	}
	var w1 *WorkerReport
	for i := range res.Workers {
		if res.Workers[i].ID == 1 {
			w1 = &res.Workers[i]
		}
	}
	if w1 == nil || RecipeFamily(w1.Recipe) != "keepall" {
		t.Fatalf("worker 1 recipe = %+v, want keepall family", w1)
	}
	// All workers detached once the run finished.
	if snap := mon.Snapshot(); len(snap.Live) != 0 {
		t.Fatalf("monitor still holds %d live workers after Solve", len(snap.Live))
	}
}
