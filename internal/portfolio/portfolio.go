// Package portfolio races diversified configurations of the CDCL solver
// over the same formula on separate goroutines, answering with the first
// definitive verdict (algorithm portfolio parallelism). The paper's §6
// observation — that restart policy, randomization and decision
// heuristics dramatically change solver behavior on the same EDA
// instance — is exactly the variance a portfolio exploits: on SAT
// instances some lucky configuration finds a model quickly, on UNSAT
// instances workers cooperate by exchanging short learned clauses
// through a shared pool, so every worker prunes with lemmas its siblings
// derived.
//
// Typical use:
//
//	p := portfolio.New(f, portfolio.Options{Workers: 4})
//	res := p.Solve(context.Background())
//	if res.Status == solver.Sat { use(res.Model) }
//
// Determinism: worker 0 always runs the base configuration unchanged,
// so Options{Workers: 1} reproduces the sequential solver bit for bit.
package portfolio

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// Options configures a Portfolio. The zero value is usable: GOMAXPROCS
// workers, clause sharing on, default diversification.
type Options struct {
	// Workers is the number of racing solver goroutines (0 = GOMAXPROCS,
	// 1 = the sequential base configuration).
	Workers int

	// NoShare disables learned-clause exchange between workers.
	NoShare bool

	// ShareMaxLen / ShareMaxLBD bound which learned clauses are exported
	// to the shared pool (0 = the solver defaults, 8 and 4).
	ShareMaxLen int
	ShareMaxLBD int

	// PoolCap bounds the shared pool (0 = 4096 clauses).
	PoolCap int

	// Base is the configuration worker 0 runs verbatim and later workers
	// diversify from.
	Base solver.Options

	// Seed perturbs the per-worker PRNG seeds (combined with Base.Seed),
	// so distinct portfolio runs can be made to explore differently
	// while each remains deterministic.
	Seed int64
}

// WorkerReport is one worker's outcome and search statistics. Reports
// are value copies taken after every worker has stopped; holding them
// keeps no solver alive.
type WorkerReport struct {
	// ID is the worker index (0 = the undiversified base configuration).
	ID int
	// Recipe names the diversification applied to this worker.
	Recipe string
	// Status is this worker's own verdict (Unknown for interrupted
	// losers and exhausted budgets).
	Status solver.Status
	// Stats is the worker's final search statistics, including clauses
	// imported/exported through the shared pool.
	Stats solver.Stats
}

// Result aggregates a portfolio run. All fields are owned by the
// caller: Model and Core are copies, and no field aliases a worker's
// internal state.
type Result struct {
	// Status is the winning verdict (Unknown if every worker was
	// interrupted or exhausted its budget).
	Status solver.Status
	// Model is the winner's satisfying assignment when Status is Sat.
	Model cnf.Assignment
	// Core is the winner's inconsistent assumption subset when Status is
	// Unsat and assumptions were given.
	Core []cnf.Lit
	// Winner is the index of the first worker to answer (-1 if none).
	Winner int
	// Recipe names the winner's configuration ("" if none).
	Recipe string
	// Workers reports every worker, including interrupted losers.
	Workers []WorkerReport
	// SharedExported / SharedDropped count clauses accepted into and
	// rejected from the shared pool (duplicates or pool full).
	SharedExported, SharedDropped int64
}

// Portfolio is a reusable parallel solving harness over one formula.
type Portfolio struct {
	f    *cnf.Formula
	opts Options
}

// New creates a portfolio over f. The formula is read, never mutated;
// each worker builds its own private clause database from it.
func New(f *cnf.Formula, opts Options) *Portfolio {
	return &Portfolio{f: f, opts: opts}
}

// Solve races the workers under ctx and returns the first definitive
// answer, interrupting the losers. Cancelling ctx interrupts everyone
// and yields Status Unknown.
func (p *Portfolio) Solve(ctx context.Context, assumptions ...cnf.Lit) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}

	shared := newPool(p.opts.PoolCap)
	solvers := make([]*solver.Solver, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		o, name := diversify(i, p.opts.Base, p.opts.Seed)
		if !p.opts.NoShare && n > 1 {
			id := i
			cursor := new(int)
			var fpBuf []cnf.Lit // per-worker fingerprint scratch: hash outside the pool lock
			o.ExportClause = func(lits []cnf.Lit, lbd int) bool {
				var fp uint64
				fp, fpBuf = fingerprint(lits, fpBuf)
				return shared.add(id, lits, lbd, fp)
			}
			o.ImportClauses = func() []cnf.Clause { return shared.drain(id, cursor) }
			if p.opts.ShareMaxLen > 0 {
				o.ShareMaxLen = p.opts.ShareMaxLen
			}
			if p.opts.ShareMaxLBD > 0 {
				o.ShareMaxLBD = p.opts.ShareMaxLBD
			}
		}
		solvers[i] = solver.FromFormula(p.f, o)
		names[i] = name
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Interrupt only touches an atomic flag, so the callback may safely
	// overlap the stats collection below.
	stopWatch := context.AfterFunc(ctx, func() {
		for _, s := range solvers {
			s.Interrupt()
		}
	})
	defer stopWatch()

	type outcome struct {
		id int
		st solver.Status
	}
	ch := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch <- outcome{i, solvers[i].Solve(assumptions...)}
		}(i)
	}

	res := &Result{Status: solver.Unknown, Winner: -1}
	statuses := make([]solver.Status, n)
	for done := 0; done < n; done++ {
		oc := <-ch
		statuses[oc.id] = oc.st
		if res.Winner < 0 && oc.st != solver.Unknown {
			res.Winner = oc.id
			res.Status = oc.st
			cancel() // first definitive answer wins; interrupt the losers
		}
	}
	wg.Wait()

	if res.Winner >= 0 {
		w := solvers[res.Winner]
		res.Recipe = names[res.Winner]
		switch res.Status {
		case solver.Sat:
			res.Model = w.Model()
		case solver.Unsat:
			if len(assumptions) > 0 {
				res.Core = w.Core()
			}
		}
	}
	for i := 0; i < n; i++ {
		res.Workers = append(res.Workers, WorkerReport{
			ID:     i,
			Recipe: names[i],
			Status: statuses[i],
			Stats:  solvers[i].Stats,
		})
	}
	res.SharedExported, res.SharedDropped = shared.stats()
	return res
}

// Solve is a one-shot convenience: build a portfolio over f and race it.
func Solve(ctx context.Context, f *cnf.Formula, opts Options, assumptions ...cnf.Lit) *Result {
	return New(f, opts).Solve(ctx, assumptions...)
}
