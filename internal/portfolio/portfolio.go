// Package portfolio races diversified configurations of the CDCL solver
// over the same formula on separate goroutines, answering with the first
// definitive verdict (algorithm portfolio parallelism). The paper's §6
// observation — that restart policy, randomization and decision
// heuristics dramatically change solver behavior on the same EDA
// instance — is exactly the variance a portfolio exploits: on SAT
// instances some lucky configuration finds a model quickly, on UNSAT
// instances workers cooperate by exchanging short learned clauses
// through a shared pool, so every worker prunes with lemmas its siblings
// derived.
//
// With Options.Adaptive the portfolio stops being a static recipe table:
// a supervisor samples every worker's progress (conflict rate and
// learnt-clause LBD quality, via the solver's race-free Snapshot hook),
// kills recipes that are clearly losing once a grace period has passed,
// and respawns the freed slot with a fresh-seeded recipe drawn from an
// explore/exploit schedule. Result.Workers then records the full
// lineage: every worker that ever ran, its slot, generation and reason
// for death.
//
// Typical use:
//
//	p := portfolio.New(f, portfolio.Options{Workers: 4, Adaptive: true})
//	res := p.Solve(context.Background())
//	if res.Status == solver.Sat { use(res.Model) }
//
// Determinism: worker 0 always runs the base configuration unchanged,
// so Options{Workers: 1} reproduces the sequential solver bit for bit
// (the supervisor and the sharing pool are disabled for a single
// worker, Adaptive or not). Adaptive kill timing depends on wall
// clock, so run-to-run lineages differ; each individual respawn draw,
// however, is a pure function of its inputs (global spawn index,
// generation, exploit hint and the seeds), so a recorded lineage
// identifies every recipe and seed it ran exactly.
package portfolio

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// Options configures a Portfolio. The zero value is usable: GOMAXPROCS
// workers, clause sharing on, default diversification, static
// scheduling.
type Options struct {
	// Workers is the number of racing solver goroutines (0 = GOMAXPROCS,
	// 1 = the sequential base configuration).
	Workers int

	// NoShare disables learned-clause exchange between workers.
	NoShare bool

	// ShareMaxLen / ShareMaxLBD bound which learned clauses each worker
	// offers to the shared pool (0 = the solver defaults, 8 and 4).
	// Final admission is the pool's dynamic LBD threshold; see
	// PoolQuantile.
	ShareMaxLen int
	ShareMaxLBD int

	// PoolCap bounds the shared pool (0 = 4096 clauses). Once full, an
	// admission evicts the oldest entry.
	PoolCap int

	// PoolQuantile tunes the pool's dynamic admission: at low pressure
	// a clause is admitted when its LBD is at or below this quantile of
	// recently admitted LBDs, and the effective quantile tightens
	// toward 0 as the unread backlog approaches PoolCap (0 = 0.5).
	// 1 disables the dynamic threshold: everything the solver-side
	// caps let through is admitted, with eviction the only
	// backpressure (the pre-adaptive fixed-cap behavior).
	PoolQuantile float64

	// Adaptive enables the scheduling supervisor: worker progress is
	// sampled (solver.Snapshot), clearly-losing recipes are killed
	// after Grace and their slots respawned with fresh-seeded recipes
	// from an explore/exploit schedule. Ignored with a single worker —
	// Workers: 1 stays bit-for-bit the sequential solver.
	Adaptive bool

	// Grace is the minimum age of a worker (since its spawn or respawn)
	// before the supervisor may kill it (0 = 2s). The sampling period
	// is derived from it (Grace/8, clamped to [1ms, 250ms]).
	Grace time.Duration

	// KillBelow is the relative-progress threshold: a worker past its
	// grace period is killed when its progress score — conflicts/s plus
	// a credit for clauses the shared pool admitted from it, scaled by
	// learnt-LBD quality — falls below KillBelow times the best live
	// worker's score (0 = 0.25). The pool credit keeps a low-conflict
	// worker alive while it is feeding the fleet lemmas the pool judges
	// competitive. Values ≥ 1 kill everything but the leader at every
	// sample, the respawn-churn stress configuration. The last live
	// worker is never killed.
	KillBelow float64

	// MaxRespawns bounds respawns per slot (0 = 4). A slot killed with
	// its budget spent retires instead: its CPU share falls to the
	// surviving workers. Negative disables respawning entirely — every
	// kill retires its slot, shrinking the portfolio toward the
	// leaders, the natural configuration on CPU-starved hosts where a
	// fresh recipe would only steal cycles from the winner.
	MaxRespawns int

	// Base is the configuration worker 0 runs verbatim and later workers
	// diversify from.
	//
	// Proof mode: when Base requests a proof (Base.LogProof or a
	// Base.Proof sink), worker 0 becomes the designated proof worker —
	// it alone streams DRAT, stays out of the shared pool (importing
	// foreign clauses would poison the proof; its own exports are
	// withheld so an idle pool cursor cannot pin the backlog and choke
	// admission fleet-wide), and is exempt from adaptive kills so the
	// stream is never abandoned mid-refutation. The proof fields are
	// stripped from every other worker, which race and share exactly as
	// in a proofless portfolio. Result.Proved reports whether the
	// adopted verdict came from the proof worker.
	Base solver.Options

	// Seed perturbs the per-worker PRNG seeds (combined with Base.Seed),
	// so distinct portfolio runs can be made to explore differently
	// while each remains deterministic.
	Seed int64

	// PreferRecipe names a recipe family (see RecipeFamily) that a
	// cross-run memory expects to win this instance class. When set and
	// valid, worker 1's initial draw runs that family and the adaptive
	// respawn schedule's explore arm alternates toward it. Unknown
	// names — and "base", which worker 0 permanently runs anyway — are
	// ignored. Worker 0 is never affected, so a one-worker portfolio
	// stays bit-identical to the sequential solver.
	PreferRecipe string

	// Monitor, when non-nil, receives every spawned worker for live
	// progress sampling (conflicts/s, glue share) plus the supervisor's
	// kill/respawn events — the probe a serving layer's status
	// endpoint reads while the job runs. The Monitor must be private
	// to this run.
	Monitor *Monitor
}

// WorkerReport is one worker's outcome and search statistics. Reports
// are value copies taken after every worker has stopped; holding them
// keeps no solver alive. Under adaptive scheduling there is one report
// per worker that EVER ran — the lineage — not one per slot.
type WorkerReport struct {
	// ID is the spawn-order index (0 = the undiversified base
	// configuration) and equals this report's index in Result.Workers.
	ID int
	// Slot is the scheduling slot the worker occupied; Gen counts
	// respawns into that slot (0 = the original recipe). Static runs
	// have Gen 0 and Slot == ID.
	Slot int
	Gen  int
	// Recipe names the diversification applied to this worker.
	Recipe string
	// Status is this worker's own verdict (Unknown for interrupted
	// losers, killed workers and exhausted budgets).
	Status solver.Status
	// Reason records why the worker stopped: "winner" for the worker
	// whose verdict was adopted, "killed-slow" for a supervisor kill
	// that respawned the slot, "retired" for a kill after the slot's
	// respawn budget was spent, "interrupted" for workers cancelled
	// because a sibling won or the context was cancelled, and "" for a
	// worker that stopped on its own (a second definitive finisher or
	// an exhausted per-worker budget).
	Reason string
	// Stats is the worker's final search statistics, including clauses
	// imported/exported through the shared pool and the learn-time LBD
	// histogram.
	Stats solver.Stats
}

// Result aggregates a portfolio run. All fields are owned by the
// caller: Model and Core are copies, and no field aliases a worker's
// internal state.
type Result struct {
	// Status is the winning verdict (Unknown if every worker was
	// interrupted or exhausted its budget).
	Status solver.Status
	// Model is the winner's satisfying assignment when Status is Sat.
	Model cnf.Assignment
	// Core is the winner's inconsistent assumption subset when Status is
	// Unsat and assumptions were given.
	Core []cnf.Lit
	// Winner is the index into Workers of the first worker to answer
	// (-1 if none).
	Winner int
	// Proved reports that the adopted verdict was produced by the
	// designated proof worker (see Options.Base), so its DRAT stream is
	// a complete witness. False for proofless runs, when a non-proof
	// sibling won the race (the serving layer then replays the solve
	// off the hot path to obtain a proof), and for Sat verdicts, which
	// are certified by the model instead.
	Proved bool
	// Warm is the winning worker's branching warm-start profile (its
	// top variables by VSIDS activity with their saved phases), captured
	// after every worker has stopped. A cross-run memory can feed it to
	// the next same-class solve via Options.Base.WarmStart. Empty when no
	// worker answered.
	Warm []solver.WarmVar
	// Recipe names the winner's configuration ("" if none).
	Recipe string
	// Workers reports every worker that ever ran, in spawn order —
	// under adaptive scheduling this is the full kill/respawn lineage.
	Workers []WorkerReport
	// Kills counts supervisor kill decisions; Respawns counts the
	// replacements actually spawned (a kill past the slot's respawn
	// budget retires the slot instead).
	Kills, Respawns int
	// Pool reports the shared pool's dynamic-admission counters.
	Pool PoolStats
	// SharedExported / SharedDropped are legacy aliases: clauses
	// admitted into the shared pool, and offers that did not make it
	// (dynamic-admission rejections plus duplicates).
	SharedExported, SharedDropped int64
}

// Portfolio is a reusable parallel solving harness over one formula.
type Portfolio struct {
	f    *cnf.Formula
	opts Options
}

// New creates a portfolio over f. The formula is read, never mutated;
// each worker builds its own private clause database from it.
func New(f *cnf.Formula, opts Options) *Portfolio {
	return &Portfolio{f: f, opts: opts}
}

// runningWorker is the scheduling loop's bookkeeping for one spawned
// solver. Only the loop goroutine touches it (the solver itself is
// reached through race-safe methods: Interrupt, Snapshot).
type runningWorker struct {
	id        int // spawn order; index into Result.Workers
	slot, gen int
	name      string
	recipeIdx int // index into the recipe table (for exploit cloning)
	s         *solver.Solver
	spawned   time.Time
	stopWatch func() bool         // cancels the ctx→Interrupt watcher
	detach    func(reason string) // removes the worker from the run's Monitor
	killed    bool                // the supervisor decided to kill it
	respawn   bool                // ...and the slot's budget allows a successor
	reason    string              // reason-for-death recorded at kill time
}

// exportCredit is how many of a worker's own conflicts one pool-admitted
// export is worth in the supervisor's progress score. Admissions are
// pool-filtered for LBD quality, so each one is evidence the worker is
// producing lemmas the whole fleet prunes with — worth more than a
// private conflict, but bounded so a sharing hub that finds nothing
// itself cannot shadow a worker that is actually closing the search.
const exportCredit = 4

// warmProfileSize is how many top-activity variables the winner's
// warm-start profile records. Big enough to seed the first restarts'
// worth of branching, small enough that a stale profile is overruled
// within a few conflicts of bumping.
const warmProfileSize = 16

// progressScore rates a worker from a progress snapshot, the number of
// its clauses the shared pool admitted, and its age in seconds:
// (conflicts + exportCredit·admitted) per second, scaled by
// learnt-clause quality (0.5 + glue share of the LBD histogram, so a
// worker learning mostly glue counts up to 1.5×, one learning only
// junk 0.5×). Pure function; the supervisor kill test exercises it
// directly.
func progressScore(snap solver.Progress, admitted int64, age float64) float64 {
	if age <= 0 {
		return 0
	}
	return (float64(snap.Conflicts) + exportCredit*float64(admitted)) / age * (0.5 + snap.GlueShare())
}

// score rates a live worker for the supervisor, crediting the clauses
// the shared pool admitted from it on top of its own conflict rate.
func (w *runningWorker) score(now time.Time, shared *pool) float64 {
	return progressScore(w.s.Snapshot(), shared.slotAdmitted(w.slot, w.gen), now.Sub(w.spawned).Seconds())
}

// bestLive returns the live worker with the highest progress score.
func bestLive(running []*runningWorker, now time.Time, shared *pool) (*runningWorker, float64) {
	var best *runningWorker
	bestScore := 0.0
	for _, w := range running {
		if w == nil {
			continue
		}
		if sc := w.score(now, shared); best == nil || sc > bestScore {
			best, bestScore = w, sc
		}
	}
	return best, bestScore
}

// Solve races the workers under ctx and returns the first definitive
// answer, interrupting the losers. Cancelling ctx interrupts everyone
// and yields Status Unknown. Solve returns only after every spawned
// worker goroutine has exited.
func (p *Portfolio) Solve(ctx context.Context, assumptions ...cnf.Lit) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	adaptive := p.opts.Adaptive && n > 1
	grace := p.opts.Grace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	killBelow := p.opts.KillBelow
	if killBelow <= 0 {
		killBelow = 0.25
	}
	maxRespawns := p.opts.MaxRespawns
	if maxRespawns == 0 {
		maxRespawns = 4
	}
	// Cross-run memory hint: resolve the preferred recipe family once;
	// -1 (unknown or unset) leaves every draw on the plain schedule.
	// The base family is worker 0's permanent configuration, so
	// preferring it is inherently satisfied — treating it as a hint
	// would only make explore draws duplicate worker 0.
	preferIdx := recipeIndex(RecipeFamily(p.opts.PreferRecipe))
	if preferIdx == 0 {
		preferIdx = -1
	}
	// Proof mode: worker 0 streams the proof and stays out of the pool;
	// everyone else races and shares as usual (Options.Base).
	proofMode := p.opts.Base.LogProof || p.opts.Base.Proof != nil
	share := !p.opts.NoShare && n > 1
	shared := newPool(p.opts.PoolCap, n, p.opts.PoolQuantile)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		w  *runningWorker
		st solver.Status
	}
	ch := make(chan outcome, n)

	res := &Result{Status: solver.Unknown, Winner: -1}
	running := make([]*runningWorker, n) // live worker per slot (nil = free/closed)
	respawnsUsed := make([]int, n)
	spawnIdx := 0
	live := 0
	var wg sync.WaitGroup

	spawn := func(slot, gen int, o solver.Options, name string, recipeIdx int) {
		proofWorker := proofMode && slot == 0
		if proofMode && !proofWorker {
			// Only the designated worker carries the proof burden; its
			// siblings run the diversified recipes unencumbered.
			o.LogProof = false
			o.Proof = nil
		}
		if share && !proofWorker {
			shared.openSlot(slot, gen)
			var fpBuf []cnf.Lit // per-worker fingerprint scratch: hash outside the pool lock
			o.ExportClause = func(lits []cnf.Lit, lbd int) bool {
				var fp uint64
				fp, fpBuf = fingerprint(lits, fpBuf)
				return shared.add(slot, gen, lits, lbd, fp)
			}
			o.ImportClauses = func() []cnf.Clause { return shared.drain(slot, gen) }
			if p.opts.ShareMaxLen > 0 {
				o.ShareMaxLen = p.opts.ShareMaxLen
			}
			if p.opts.ShareMaxLBD > 0 {
				o.ShareMaxLBD = p.opts.ShareMaxLBD
			}
		}
		w := &runningWorker{
			id: spawnIdx, slot: slot, gen: gen, name: name, recipeIdx: recipeIdx,
			s: solver.FromFormula(p.f, o), spawned: time.Now(),
		}
		w.detach = p.opts.Monitor.Attach(slot, gen, name, w.s)
		spawnIdx++
		// Interrupt only touches an atomic flag, so the watcher may
		// safely overlap the solve and the final stats copy.
		w.stopWatch = context.AfterFunc(ctx, w.s.Interrupt)
		running[slot] = w
		live++
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- outcome{w, w.s.Solve(assumptions...)}
		}()
	}

	for i := 0; i < n; i++ {
		o, name, idx := diversifyPrefer(i, p.opts.Base, p.opts.Seed, preferIdx)
		spawn(i, 0, o, name, idx)
	}

	var tickC <-chan time.Time
	scores := make([]float64, n) // per-tick score vector, reused across ticks
	if adaptive {
		tick := grace / 8
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		if tick > 250*time.Millisecond {
			tick = 250 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		tickC = ticker.C
	}

	var winner *runningWorker
	for live > 0 {
		select {
		case oc := <-ch:
			live--
			w := oc.w
			w.stopWatch()
			if running[w.slot] == w {
				running[w.slot] = nil
				shared.closeSlot(w.slot)
			}
			reason := w.reason
			if oc.st != solver.Unknown {
				// A definitive answer always stands, even when the
				// supervisor had just decided to kill this worker: a
				// kill/respawn-heavy schedule can never lose a winner.
				reason = ""
				if winner == nil {
					winner = w
					res.Status = oc.st
					res.Recipe = w.name
					switch oc.st {
					case solver.Sat:
						res.Model = w.s.Model()
					case solver.Unsat:
						if len(assumptions) > 0 {
							res.Core = w.s.Core()
						}
					}
					cancel() // first definitive answer wins; interrupt the losers
				}
				if winner == w {
					reason = "winner"
				}
			} else if reason == "" && (winner != nil || ctx.Err() != nil) {
				reason = "interrupted"
			}
			// Supervisor kills were already recorded by NoteKill at
			// decision time; passing the reason again would duplicate
			// the event in the Monitor's bounded history.
			if w.killed {
				w.detach("")
			} else {
				w.detach(reason)
			}
			res.Workers = append(res.Workers, WorkerReport{
				ID: w.id, Slot: w.slot, Gen: w.gen, Recipe: w.name,
				Status: oc.st, Reason: reason, Stats: w.s.Stats,
			})
			if w.killed && w.respawn && winner == nil && ctx.Err() == nil {
				// The slot is free (its goroutine just exited): respawn
				// it with a fresh-seeded recipe from the explore/exploit
				// schedule, exploiting the current best live recipe and
				// biasing the explore arm toward the remembered family.
				exploitIdx := -1
				if best, sc := bestLive(running, time.Now(), shared); best != nil && sc > 0 {
					exploitIdx = best.recipeIdx
				}
				o, name, idx := respawnPrefer(spawnIdx, w.slot, w.gen+1, p.opts.Base, p.opts.Seed, exploitIdx, preferIdx)
				p.opts.Monitor.NoteRespawn(name)
				spawn(w.slot, w.gen+1, o, name, idx)
				res.Respawns++
			}

		case <-tickC:
			if winner != nil || ctx.Err() != nil {
				continue // already cancelled; just draining outcomes
			}
			// One scoring pass per tick: each score costs a solver
			// snapshot and a pool-mutex acquisition (slotAdmitted), and
			// the pool mutex is contended by every worker's per-conflict
			// exports — don't pay it twice per worker.
			now := time.Now()
			var best *runningWorker
			bestScore := 0.0
			liveNow := 0
			for slot, w := range running {
				if w == nil {
					continue
				}
				liveNow++
				scores[slot] = w.score(now, shared)
				if best == nil || scores[slot] > bestScore {
					best, bestScore = w, scores[slot]
				}
			}
			if best == nil || bestScore <= 0 {
				continue // no measurable progress anywhere yet
			}
			for slot, w := range running {
				if w == nil || w == best || liveNow <= 1 {
					continue // never kill the last live worker or the leader
				}
				if proofMode && slot == 0 {
					// The proof worker is kill-exempt: its score is
					// proof-taxed by construction, and killing it would
					// abandon the DRAT stream mid-refutation.
					continue
				}
				if now.Sub(w.spawned) < grace {
					continue
				}
				if scores[slot] >= killBelow*bestScore {
					continue
				}
				// Kill: close the pool slot first so the dying worker's
				// in-flight exports/imports bounce off the teardown
				// guard, then interrupt. The respawn (or retirement)
				// happens when its outcome arrives.
				w.killed = true
				if respawnsUsed[w.slot] < maxRespawns { // maxRespawns < 0: retire-only
					respawnsUsed[w.slot]++
					w.respawn = true
					w.reason = "killed-slow"
				} else {
					w.reason = "retired"
				}
				res.Kills++
				p.opts.Monitor.NoteKill(w.name)
				running[w.slot] = nil
				shared.closeSlot(w.slot)
				w.s.Interrupt()
				liveNow--
			}
		}
	}
	wg.Wait()

	// Reports were appended in completion order; lineage and the Winner
	// index are by spawn order.
	sort.Slice(res.Workers, func(i, j int) bool { return res.Workers[i].ID < res.Workers[j].ID })
	if winner != nil {
		res.Winner = winner.id
		res.Proved = proofMode && winner.slot == 0 && res.Status == solver.Unsat
		// Every worker goroutine has exited (wg.Wait above), so reading
		// the winner's heuristic state is race-free here.
		res.Warm = winner.s.WarmProfile(warmProfileSize)
	}
	ps := shared.stats()
	res.Pool = ps
	res.SharedExported = ps.Admitted
	res.SharedDropped = ps.Rejected + ps.Duplicates
	return res
}

// Solve is a one-shot convenience: build a portfolio over f and race it.
func Solve(ctx context.Context, f *cnf.Formula, opts Options, assumptions ...cnf.Lit) *Result {
	return New(f, opts).Solve(ctx, assumptions...)
}
