package portfolio

import (
	"slices"
	"sync"

	"repro/internal/cnf"
)

// pool is the lock-guarded learned-clause exchange between workers. It
// is an append-only log with per-worker read cursors: a worker exports
// a clause once (deduplicated by a literal-set fingerprint) and every
// other worker imports it at its next restart boundary. The log is
// bounded; once full, further exports are counted but dropped, which
// keeps memory finite without invalidating any cursor.
//
// Ownership follows the ExportClause contract: the literal slice handed
// to add is valid only during the call, so the pool copies it exactly
// once — on acceptance into the log. Duplicate or overflowing offers
// allocate nothing.
type pool struct {
	mu   sync.Mutex
	max  int
	log  []sharedClause
	seen map[uint64]int // clause fingerprint → index in log

	exported int64 // clauses accepted into the log
	dropped  int64 // clauses rejected (duplicate or log full)
}

type sharedClause struct {
	lits cnf.Clause
	// origins lists every worker known to hold this clause already (the
	// first exporter plus any worker whose own export was deduplicated
	// against it); drain skips them so nobody re-imports a clause it
	// derived itself.
	origins []int
	lbd     int
}

func newPool(max int) *pool {
	if max <= 0 {
		max = 4096
	}
	return &pool{max: max, seen: make(map[uint64]int)}
}

// fingerprint hashes the clause as a literal set (FNV-1a over sorted
// literals) so permutations of the same clause deduplicate. The sort
// runs in the caller-owned scratch buffer, which is returned (possibly
// grown) for reuse: each exporting worker keeps its own, so hashing
// happens outside the pool lock and the caller's slice is never
// mutated. Nothing is allocated once the buffer has grown.
func fingerprint(lits []cnf.Lit, scratch []cnf.Lit) (uint64, []cnf.Lit) {
	sorted := append(scratch[:0], lits...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	h := uint64(14695981039346656037)
	for _, l := range sorted {
		h ^= uint64(uint32(l))
		h *= 1099511628211
	}
	return h, sorted
}

// add publishes a clause exported by worker origin, pre-hashed by the
// caller with fingerprint (computed outside the lock). lits is borrowed
// for the duration of the call; the pool copies it only if the log
// accepts it. The return value reports whether the pool accepts further
// clauses; false (log full) lets exporters stop paying the per-conflict
// callback.
func (p *pool) add(origin int, lits []cnf.Lit, lbd int, fp uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, dup := p.seen[fp]; dup {
		// This worker derived the clause independently: remember it as
		// an owner so drain never hands the sibling's copy back to it.
		sc := &p.log[idx]
		if !slices.Contains(sc.origins, origin) {
			sc.origins = append(sc.origins, origin)
		}
		p.dropped++
		return len(p.log) < p.max
	}
	if len(p.log) >= p.max {
		p.dropped++
		return false
	}
	p.seen[fp] = len(p.log)
	p.log = append(p.log, sharedClause{
		lits:    append(cnf.Clause(nil), lits...), // copy on acceptance
		origins: []int{origin},
		lbd:     lbd,
	})
	p.exported++
	return len(p.log) < p.max
}

// drain returns every clause published since *cursor by workers other
// than id, advancing the cursor. The returned clause slices are shared
// and must not be mutated (Solver.injectLearnt copies them).
func (p *pool) drain(id int, cursor *int) []cnf.Clause {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []cnf.Clause
	for ; *cursor < len(p.log); *cursor++ {
		if slices.Contains(p.log[*cursor].origins, id) {
			continue
		}
		out = append(out, p.log[*cursor].lits)
	}
	return out
}

func (p *pool) stats() (exported, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exported, p.dropped
}
