package portfolio

import (
	"slices"
	"sync"

	"repro/internal/cnf"
)

// Dynamic-admission tuning. The pool decides acceptance from a sliding
// window of recently admitted LBDs and the pressure of its unread
// backlog; see (*pool).thresholdLocked for the state machine.
const (
	// admissionWindow is how many recently admitted clause LBDs the
	// quantile is computed over.
	admissionWindow = 128
	// admissionMinSamples is the minimum window fill before the
	// threshold engages; below it every offer is admitted (cold start).
	admissionMinSamples = 16
	// lowWaterFrac: a backlog below cap/lowWaterFrac means the log has
	// drained — admission fully relaxes (every offer admitted), which
	// refreshes the window with the true offer distribution and stops
	// the quantile from ratcheting permanently downward.
	lowWaterFrac = 4
	// windowMaxLBD clamps window entries so the quantile can be read
	// from a fixed bucket-count histogram (an O(windowMaxLBD) walk per
	// offer instead of sorting the window under the pool lock). Shared
	// clauses pass solver-side LBD caps far below this.
	windowMaxLBD = 32
)

// PoolStats is a snapshot of the shared pool's admission counters,
// reported on Result.Pool.
type PoolStats struct {
	// Admitted counts clauses accepted into the log.
	Admitted int64
	// Rejected counts offers refused by the dynamic LBD threshold or by
	// the closed-slot teardown guard.
	Rejected int64
	// Duplicates counts offers deduplicated against an existing entry.
	Duplicates int64
	// Evicted counts entries dropped from the head of the log to make
	// room for newer admissions once the log hit its cap.
	Evicted int64
	// Held is the number of entries currently in the log.
	Held int
	// Threshold is the last admission LBD bound that engaged (0 =
	// admission never tightened). It is a high-water diagnostic, not
	// the live bound: by the time a Result is assembled every slot has
	// closed and the live bound is trivially relaxed.
	Threshold int
}

// pool is the learned-clause exchange between portfolio workers: a
// bounded, lock-guarded log with per-slot read cursors and dynamic
// admission.
//
// Slots, not workers, own cursors: the adaptive scheduler kills and
// respawns workers in place, so each scheduling slot carries an (open,
// generation, cursor) triple. A worker's export/import closures carry
// the (slot, generation) they were spawned with; offers from a closed
// slot or a stale generation — a dying solver's in-flight export after
// the supervisor tore its slot down — are refused without touching the
// log or any cursor. A respawned worker's cursor rewinds to the oldest
// held entry, so a fresh recipe starts by inheriting the pool's
// accumulated lemmas.
//
// Admission is by dynamic LBD threshold instead of fixed caps: the pool
// keeps a sliding window of recently admitted LBDs and admits a clause
// iff its LBD clears the current quantile of that window, with the
// effective quantile tightening toward 0 as the unread backlog
// approaches the cap and relaxing to admit-everything when the log
// drains. Once the log is full, an admission evicts the oldest entry
// (cursors behind the eviction point skip ahead; they were not keeping
// up anyway).
//
// Ownership follows the ExportClause contract: the literal slice handed
// to add is valid only during the call, so the pool copies it exactly
// once — on admission. Rejected, duplicate and late (closed-slot)
// offers allocate nothing.
type pool struct {
	mu   sync.Mutex
	max  int
	q    float64 // admission quantile at zero pressure, in (0, 1]
	base int     // global sequence index of log[0]
	log  []sharedClause
	seen map[uint64]int // clause fingerprint → global sequence index

	slots []slotState

	window [admissionWindow]int  // LBDs of recently admitted clauses (ring)
	wcount [windowMaxLBD + 1]int // histogram of window entries, by LBD
	wlen   int                   // filled portion of window
	wpos   int                   // next write position (ring)

	admitted   int64
	rejected   int64
	duplicates int64
	evicted    int64

	// lastThreshold remembers the most recent engaged admission bound
	// for end-of-run stats: the live bound is meaningless once every
	// slot has closed (backlog 0 → always relaxed).
	lastThreshold int
}

type slotState struct {
	open   bool
	gen    int
	cursor int // global sequence index of the next unread entry
	// admitted counts clauses from this slot's current occupant that
	// the pool accepted — the worker's "contribution" the adaptive
	// supervisor credits alongside its own conflict rate. Reset on
	// openSlot (a respawned worker starts from zero).
	admitted int64
}

type origin struct{ slot, gen int }

type sharedClause struct {
	lits cnf.Clause
	fp   uint64
	// origins lists every (slot, generation) known to hold this clause
	// already (the first exporter plus any worker whose own export was
	// deduplicated against it); drain skips them so nobody re-imports a
	// clause it derived itself. A respawned worker (same slot, later
	// generation) is a different solver and does import its
	// predecessor's clauses.
	origins []origin
	lbd     int
}

// newPool creates a pool with the given cap (0 = 4096) over nSlots
// scheduling slots, admitting at the given quantile (0 or out of range
// = 0.5). Quantile 1 disables the dynamic threshold entirely: every
// offer passing the solver-side caps is admitted, with eviction the
// only backpressure.
func newPool(max, nSlots int, quantile float64) *pool {
	if max <= 0 {
		max = 4096
	}
	if quantile <= 0 || quantile > 1 {
		quantile = 0.5
	}
	return &pool{
		max:   max,
		q:     quantile,
		seen:  make(map[uint64]int),
		slots: make([]slotState, nSlots),
	}
}

// fingerprint hashes the clause as a literal set (FNV-1a over sorted
// literals) so permutations of the same clause deduplicate. The sort
// runs in the caller-owned scratch buffer, which is returned (possibly
// grown) for reuse: each exporting worker keeps its own, so hashing
// happens outside the pool lock and the caller's slice is never
// mutated. Nothing is allocated once the buffer has grown.
func fingerprint(lits []cnf.Lit, scratch []cnf.Lit) (uint64, []cnf.Lit) {
	sorted := append(scratch[:0], lits...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	h := uint64(14695981039346656037)
	for _, l := range sorted {
		h ^= uint64(uint32(l))
		h *= 1099511628211
	}
	return h, sorted
}

// openSlot (re)opens a scheduling slot for a worker of the given
// generation. The cursor rewinds to the oldest held entry so the new
// worker imports the pool's accumulated clauses at its first restart.
func (p *pool) openSlot(slot, gen int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slots[slot] = slotState{open: true, gen: gen, cursor: p.base}
}

// closeSlot marks a slot closed. The supervisor calls this the moment
// it decides to kill a worker — before the worker's goroutine has
// necessarily noticed the interrupt — so every subsequent add/drain
// from the dying worker bounces off the guard instead of racing a
// respawn.
func (p *pool) closeSlot(slot int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slots[slot].open = false
}

// slotAdmitted reports how many clauses the pool admitted from the
// worker currently occupying (slot, gen) — 0 for a closed slot, a
// stale generation or an out-of-range slot. The supervisor reads this
// to credit a worker's pool contributions in its progress score.
func (p *pool) slotAdmitted(slot, gen int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot < 0 || slot >= len(p.slots) || !p.slots[slot].open || p.slots[slot].gen != gen {
		return 0
	}
	return p.slots[slot].admitted
}

// backlogLocked is the number of held entries not yet read by the
// slowest open slot — the "pressure" the admission threshold reacts to.
func (p *pool) backlogLocked() int {
	head := p.base + len(p.log)
	minCur := head
	any := false
	for i := range p.slots {
		if !p.slots[i].open {
			continue
		}
		any = true
		c := p.slots[i].cursor
		if c < p.base {
			c = p.base
		}
		if c < minCur {
			minCur = c
		}
	}
	if !any {
		return 0
	}
	return head - minCur
}

// thresholdLocked computes the admission LBD bound currently in force
// (0 = relaxed, admit everything). Three regimes:
//
//	cold:    fewer than admissionMinSamples admitted recently → 0
//	drained: backlog below max/lowWaterFrac → 0
//	loaded:  quantile q·(1−fill) of the admitted-LBD window, so the
//	         bound tightens from the q-quantile toward the very best
//	         recent LBD as the backlog fills
//
// Quantile 1 is the off-switch: the threshold never engages. The
// quantile is read from the wcount histogram — an O(windowMaxLBD) walk,
// cheap enough to run under the lock on every offer.
func (p *pool) thresholdLocked() int {
	if p.q >= 1 {
		return 0
	}
	if p.wlen < admissionMinSamples {
		return 0
	}
	backlog := p.backlogLocked()
	if backlog*lowWaterFrac < p.max {
		return 0
	}
	fill := float64(backlog) / float64(p.max)
	if fill > 1 {
		fill = 1
	}
	qeff := p.q * (1 - fill)
	idx := int(qeff * float64(p.wlen))
	if idx >= p.wlen {
		idx = p.wlen - 1
	}
	// The LBD of the idx-th smallest window entry.
	cum := 0
	for lbd := 1; lbd <= windowMaxLBD; lbd++ {
		cum += p.wcount[lbd]
		if cum > idx {
			return lbd
		}
	}
	return windowMaxLBD
}

// add offers a clause exported by the worker occupying (slot, gen),
// pre-hashed by the caller with fingerprint (computed outside the
// lock). lits is borrowed for the duration of the call; the pool copies
// it only on admission. The return value reports whether the exporter
// should keep offering: false only for a closed or superseded slot (the
// worker is being torn down — stop paying the per-conflict callback).
func (p *pool) add(slot, gen int, lits []cnf.Lit, lbd int, fp uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot < 0 || slot >= len(p.slots) || !p.slots[slot].open || p.slots[slot].gen != gen {
		// Teardown guard: a dying worker's in-flight export arriving
		// after its slot closed (or was respawned at a later
		// generation). Refuse without touching log, window or cursors.
		p.rejected++
		return false
	}
	if idx, dup := p.seen[fp]; dup {
		// This worker derived the clause independently: remember it as
		// an owner so drain never hands the sibling's copy back to it.
		sc := &p.log[idx-p.base]
		if me := (origin{slot, gen}); !slices.Contains(sc.origins, me) {
			sc.origins = append(sc.origins, me)
		}
		p.duplicates++
		return true
	}
	if len(lits) > 1 {
		if t := p.thresholdLocked(); t > 0 {
			p.lastThreshold = t // survives slot teardown for stats
			if lbd > t {
				p.rejected++
				return true // threshold adapts; keep offering
			}
		}
	}
	if len(p.log) >= p.max {
		// Evict the oldest entry. Cursors behind the eviction point are
		// clamped forward at drain time; the fingerprint is forgotten so
		// the clause may be re-admitted later.
		delete(p.seen, p.log[0].fp)
		p.log[0] = sharedClause{} // release the literal slice
		p.log = p.log[1:]
		p.base++
		p.evicted++
	}
	p.slots[slot].admitted++
	p.seen[fp] = p.base + len(p.log)
	p.log = append(p.log, sharedClause{
		lits:    append(cnf.Clause(nil), lits...), // copy on admission
		fp:      fp,
		origins: []origin{{slot, gen}},
		lbd:     lbd,
	})
	p.admitted++
	if len(lits) > 1 {
		// Units are always admitted and would only drag the window
		// down; the distribution tracks competitive clauses.
		w := lbd
		if w < 1 {
			w = 1
		}
		if w > windowMaxLBD {
			w = windowMaxLBD
		}
		if p.wlen == admissionWindow {
			p.wcount[p.window[p.wpos]]-- // overwrite the oldest entry
		} else {
			p.wlen++
		}
		p.window[p.wpos] = w
		p.wcount[w]++
		p.wpos = (p.wpos + 1) % admissionWindow
	}
	return true
}

// drain returns every clause published since the slot's cursor by
// other workers, advancing the cursor. A closed or superseded slot
// drains nothing (teardown guard). The returned clause slices are
// shared and must not be mutated (Solver.injectLearnt copies them).
func (p *pool) drain(slot, gen int) []cnf.Clause {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot < 0 || slot >= len(p.slots) {
		return nil
	}
	st := &p.slots[slot]
	if !st.open || st.gen != gen {
		return nil
	}
	if st.cursor < p.base {
		st.cursor = p.base // entries evicted underneath a slow reader
	}
	var out []cnf.Clause
	me := origin{slot, gen}
	for ; st.cursor < p.base+len(p.log); st.cursor++ {
		sc := &p.log[st.cursor-p.base]
		if slices.Contains(sc.origins, me) {
			continue
		}
		out = append(out, sc.lits)
	}
	return out
}

// stats snapshots the admission counters.
func (p *pool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Admitted:   p.admitted,
		Rejected:   p.rejected,
		Duplicates: p.duplicates,
		Evicted:    p.evicted,
		Held:       len(p.log),
		Threshold:  p.lastThreshold,
	}
}
