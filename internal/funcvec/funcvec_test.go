package funcvec

import (
	"testing"
)

func TestAddConstraintArithmetic(t *testing.T) {
	// a + b == 9, a < b, a 4-bit, b 4-bit.
	m := NewModel()
	a := m.Word("a", 4)
	b := m.Word("b", 4)
	sum := m.Add(a, b)
	m.RequireEqual(sum, m.Const(9, 5))
	m.RequireLess(a, b)
	vecs := m.Generate(20, Options{Seed: 1})
	if len(vecs) == 0 {
		t.Fatal("no vectors generated")
	}
	for _, v := range vecs {
		if v["a"]+v["b"] != 9 {
			t.Fatalf("a+b != 9: %v", v)
		}
		if v["a"] >= v["b"] {
			t.Fatalf("a >= b: %v", v)
		}
	}
	// All solutions with a+b=9, a<b, 4-bit: (0,9),(1,8),(2,7),(3,6),(4,5) = 5.
	if len(vecs) != 5 {
		t.Fatalf("expected exactly 5 distinct vectors, got %d", len(vecs))
	}
}

func TestVectorsDistinct(t *testing.T) {
	m := NewModel()
	a := m.Word("a", 5)
	m.RequireLess(a, m.Const(20, 5))
	vecs := m.Generate(25, Options{Seed: 3})
	if len(vecs) != 20 {
		t.Fatalf("expected 20 distinct values below 20, got %d", len(vecs))
	}
	seen := map[uint64]bool{}
	for _, v := range vecs {
		if seen[v["a"]] {
			t.Fatalf("duplicate vector %v", v)
		}
		if v["a"] >= 20 {
			t.Fatalf("constraint violated: %v", v)
		}
		seen[v["a"]] = true
	}
}

func TestLessEqAndNotEqual(t *testing.T) {
	m := NewModel()
	a := m.Word("a", 3)
	b := m.Word("b", 3)
	m.RequireLessEq(a, b)
	m.RequireNotEqual(a, b)
	vecs := m.Generate(100, Options{Seed: 7})
	// a <= b and a != b means a < b: C(8,2) = 28 pairs.
	if len(vecs) != 28 {
		t.Fatalf("expected 28 pairs, got %d", len(vecs))
	}
	for _, v := range vecs {
		if v["a"] >= v["b"] {
			t.Fatalf("violated: %v", v)
		}
	}
}

func TestInfeasibleConstraints(t *testing.T) {
	m := NewModel()
	a := m.Word("a", 3)
	m.RequireLess(a, m.Const(0, 3)) // a < 0 impossible
	vecs := m.Generate(5, Options{Seed: 1})
	if len(vecs) != 0 {
		t.Fatalf("infeasible model produced vectors: %v", vecs)
	}
}

func TestWideAddOverflowBit(t *testing.T) {
	// 4-bit + 4-bit sums up to 30: the 5th bit must be usable.
	m := NewModel()
	a := m.Word("a", 4)
	b := m.Word("b", 4)
	sum := m.Add(a, b)
	if sum.Width() != 5 {
		t.Fatalf("sum width = %d, want 5", sum.Width())
	}
	m.RequireEqual(sum, m.Const(30, 5))
	vecs := m.Generate(2, Options{Seed: 2})
	if len(vecs) != 1 {
		t.Fatalf("a+b=30 has exactly one 4-bit solution (15+15), got %d", len(vecs))
	}
	if vecs[0]["a"] != 15 || vecs[0]["b"] != 15 {
		t.Fatalf("wrong solution: %v", vecs[0])
	}
}

func TestChainedConstraints(t *testing.T) {
	// a + b <= 10, b + c == 6, a > c (via c < a), 4-bit words:
	// c = 6-b and 6-b < a <= 10-b is non-empty, e.g. b=0, c=6, a=7.
	m := NewModel()
	a := m.Word("a", 4)
	b := m.Word("b", 4)
	c := m.Word("c", 4)
	m.RequireLessEq(m.Add(a, b), m.Const(10, 5))
	m.RequireEqual(m.Add(b, c), m.Const(6, 5))
	m.RequireLess(c, a)
	vecs := m.Generate(50, Options{Seed: 5})
	if len(vecs) == 0 {
		t.Fatal("satisfiable system produced nothing")
	}
	for _, v := range vecs {
		if v["a"]+v["b"] > 10 || v["b"]+v["c"] != 6 || v["c"] >= v["a"] {
			t.Fatalf("violated: %v", v)
		}
	}
}

func TestScaleConstLinearTerm(t *testing.T) {
	// 3a + 2b == 17 over 4-bit words.
	m := NewModel()
	a := m.Word("a", 4)
	b := m.Word("b", 4)
	lhs := m.Add(m.ScaleConst(a, 3), m.ScaleConst(b, 2))
	m.RequireEqual(lhs, m.Const(17, lhs.Width()))
	vecs := m.Generate(64, Options{Seed: 11})
	if len(vecs) == 0 {
		t.Fatal("3a+2b=17 has solutions (e.g. a=1,b=7)")
	}
	for _, v := range vecs {
		if 3*v["a"]+2*v["b"] != 17 {
			t.Fatalf("violated: %v", v)
		}
	}
	// Exhaustive count: a in 0..15, b in 0..15 with 3a+2b=17:
	// a must be odd: a=1,b=7; a=3,b=4; a=5,b=1 → 3 solutions.
	if len(vecs) != 3 {
		t.Fatalf("expected 3 solutions, got %d: %v", len(vecs), vecs)
	}
}

func TestScaleByZeroAndOne(t *testing.T) {
	m := NewModel()
	a := m.Word("a", 3)
	zero := m.ScaleConst(a, 0)
	m.RequireEqual(zero, m.Const(0, 1))
	one := m.ScaleConst(a, 1)
	m.RequireEqual(one, a)
	m.RequireEqual(a, m.Const(5, 3))
	vecs := m.Generate(2, Options{Seed: 2})
	if len(vecs) != 1 || vecs[0]["a"] != 5 {
		t.Fatalf("scaling identities broken: %v", vecs)
	}
}
