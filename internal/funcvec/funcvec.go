// Package funcvec implements constrained functional test vector
// generation (paper §3; [Fallah, Devadas & Keutzer, "Functional Vector
// Generation for HDL Models Using Linear Programming and
// 3-Satisfiability"]). Word-level variables and linear constraints are
// compiled to CNF through adder and comparator networks; satisfying
// assignments are functional vectors, and distinct-vector sampling uses
// randomized solver restarts plus blocking clauses — the iterative SAT
// usage of §6.
//
// The paper's HDL frontend is substituted by a small constraint-model
// API (see DESIGN.md): the SAT back end it exercises is identical.
package funcvec

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// Word is a fixed-width unsigned word variable (LSB first).
type Word struct {
	Name string
	Bits []cnf.Var
}

// Width returns the word's bit width.
func (w Word) Width() int { return len(w.Bits) }

// Model is a constraint model over word-level variables.
type Model struct {
	f     *cnf.Formula
	words []Word
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{f: cnf.New(0)}
}

// Word declares a fresh n-bit word.
func (m *Model) Word(name string, n int) Word {
	w := Word{Name: name, Bits: m.f.NewVars(n)}
	m.words = append(m.words, w)
	return w
}

// Formula exposes the underlying CNF (for inspection/benchmarks).
func (m *Model) Formula() *cnf.Formula { return m.f }

// Const builds a constant word of the given width.
func (m *Model) Const(value uint64, width int) Word {
	w := Word{Name: fmt.Sprintf("const%d", value), Bits: m.f.NewVars(width)}
	for i, v := range w.Bits {
		if value&(1<<uint(i)) != 0 {
			m.f.Add(cnf.PosLit(v))
		} else {
			m.f.Add(cnf.NegLit(v))
		}
	}
	return w
}

// gate adds a fresh variable constrained as the given gate function.
func (m *Model) gate(t circuit.GateType, ins ...cnf.Var) cnf.Var {
	out := m.f.NewVar()
	circuit.AppendGateCNF(m.f, t, out, ins)
	return out
}

// Add returns a word constrained to equal a + b (width = max+1).
func (m *Model) Add(a, b Word) Word {
	n := a.Width()
	if b.Width() > n {
		n = b.Width()
	}
	ax := m.zeroExtend(a, n)
	bx := m.zeroExtend(b, n)
	sum := Word{Name: "(" + a.Name + "+" + b.Name + ")"}
	carry := cnf.VarUndef
	for i := 0; i < n; i++ {
		var s, c cnf.Var
		if carry == cnf.VarUndef {
			s = m.gate(circuit.Xor, ax.Bits[i], bx.Bits[i])
			c = m.gate(circuit.And, ax.Bits[i], bx.Bits[i])
		} else {
			s = m.gate(circuit.Xor, ax.Bits[i], bx.Bits[i], carry)
			t1 := m.gate(circuit.And, ax.Bits[i], bx.Bits[i])
			t2 := m.gate(circuit.Xor, ax.Bits[i], bx.Bits[i])
			t3 := m.gate(circuit.And, t2, carry)
			c = m.gate(circuit.Or, t1, t3)
		}
		sum.Bits = append(sum.Bits, s)
		carry = c
	}
	sum.Bits = append(sum.Bits, carry)
	return sum
}

// zeroExtend pads a word with constant-0 bits up to width n.
func (m *Model) zeroExtend(a Word, n int) Word {
	if a.Width() >= n {
		return a
	}
	out := Word{Name: a.Name, Bits: append([]cnf.Var(nil), a.Bits...)}
	for out.Width() < n {
		z := m.f.NewVar()
		m.f.Add(cnf.NegLit(z))
		out.Bits = append(out.Bits, z)
	}
	return out
}

// lessThan returns a variable that is true iff a < b (unsigned), padding
// to equal width.
func (m *Model) lessThan(a, b Word) cnf.Var {
	n := a.Width()
	if b.Width() > n {
		n = b.Width()
	}
	ax := m.zeroExtend(a, n)
	bx := m.zeroExtend(b, n)
	// From MSB: lt_i = (¬a_i ∧ b_i) ∨ (a_i≡b_i ∧ lt_{i-1}).
	lt := m.f.NewVar()
	m.f.Add(cnf.NegLit(lt)) // below LSB: false
	for i := 0; i < n; i++ {
		bitLt := m.gate(circuit.Nor, ax.Bits[i], m.gate(circuit.Not, bx.Bits[i]))
		eq := m.gate(circuit.Xnor, ax.Bits[i], bx.Bits[i])
		keep := m.gate(circuit.And, eq, lt)
		lt = m.gate(circuit.Or, bitLt, keep)
	}
	return lt
}

// RequireLess asserts a < b.
func (m *Model) RequireLess(a, b Word) { m.f.Add(cnf.PosLit(m.lessThan(a, b))) }

// RequireLessEq asserts a ≤ b.
func (m *Model) RequireLessEq(a, b Word) { m.f.Add(cnf.NegLit(m.lessThan(b, a))) }

// RequireEqual asserts a == b.
func (m *Model) RequireEqual(a, b Word) {
	n := a.Width()
	if b.Width() > n {
		n = b.Width()
	}
	ax := m.zeroExtend(a, n)
	bx := m.zeroExtend(b, n)
	for i := 0; i < n; i++ {
		m.f.Add(cnf.NegLit(ax.Bits[i]), cnf.PosLit(bx.Bits[i]))
		m.f.Add(cnf.PosLit(ax.Bits[i]), cnf.NegLit(bx.Bits[i]))
	}
}

// RequireNotEqual asserts a != b.
func (m *Model) RequireNotEqual(a, b Word) {
	n := a.Width()
	if b.Width() > n {
		n = b.Width()
	}
	ax := m.zeroExtend(a, n)
	bx := m.zeroExtend(b, n)
	diff := make(cnf.Clause, n)
	for i := 0; i < n; i++ {
		diff[i] = cnf.PosLit(m.gate(circuit.Xor, ax.Bits[i], bx.Bits[i]))
	}
	m.f.AddClause(diff)
}

// Vector is one generated assignment of values to the model's words.
type Vector map[string]uint64

// value extracts a word's value from a model assignment.
func wordValue(m cnf.Assignment, w Word) uint64 {
	var out uint64
	for i, v := range w.Bits {
		if m.Value(v) == cnf.True {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Options configures vector generation.
type Options struct {
	Seed         int64
	MaxConflicts int64
	Solver       solver.Options
}

// Generate produces up to n distinct vectors satisfying the model's
// constraints. Each accepted vector is excluded with a blocking clause
// over the declared words' bits, and randomized decisions spread the
// samples across the solution space (§6 randomization).
func (m *Model) Generate(n int, opts Options) []Vector {
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	if sopts.RandomFreq == 0 {
		sopts.RandomFreq = 0.2
	}
	sopts.Seed = opts.Seed
	s := solver.FromFormula(m.f, sopts)
	var out []Vector
	for len(out) < n {
		if s.Solve() != solver.Sat {
			break
		}
		model := s.Model()
		vec := Vector{}
		var block cnf.Clause
		for _, w := range m.words {
			vec[w.Name] = wordValue(model, w)
			for _, v := range w.Bits {
				block = append(block, cnf.NewLit(v, model.Value(v) == cnf.True))
			}
		}
		out = append(out, vec)
		if len(block) == 0 || !s.AddClause(block) {
			break // no more distinct vectors
		}
	}
	return out
}

// ScaleConst returns a word constrained to equal w shifted-and-added to
// k·w (for constant k ≥ 0), enabling general linear terms Σ c_i·w_i in
// constraints. Width grows to cover the maximum product.
func (m *Model) ScaleConst(w Word, k uint64) Word {
	if k == 0 {
		return m.Const(0, 1)
	}
	var acc Word
	first := true
	shift := 0
	for kk := k; kk != 0; kk >>= 1 {
		if kk&1 == 1 {
			shifted := m.shiftLeft(w, shift)
			if first {
				acc = shifted
				first = false
			} else {
				acc = m.Add(acc, shifted)
			}
		}
		shift++
	}
	return acc
}

// shiftLeft returns w << k (constant-zero low bits).
func (m *Model) shiftLeft(w Word, k int) Word {
	out := Word{Name: w.Name + "<<"}
	for i := 0; i < k; i++ {
		z := m.f.NewVar()
		m.f.Add(cnf.NegLit(z))
		out.Bits = append(out.Bits, z)
	}
	out.Bits = append(out.Bits, w.Bits...)
	return out
}
