package route

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

// Options configures the routing SAT queries.
type Options struct {
	MaxConflicts int64
	Solver       solver.Options
	// MaxRoutesPerNet caps candidate path enumeration (0 = 12).
	MaxRoutesPerNet int
}

// Point is a grid coordinate.
type Point struct{ X, Y int }

// GridNet is a two-pin net on the routing grid.
type GridNet struct {
	Src, Dst Point
}

// Grid is an FPGA-style detailed routing instance: a W×H array of
// capacity-1 routing cells and a set of two-pin nets.
type Grid struct {
	W, H int
	Nets []GridNet
}

// Route is a candidate path: the sequence of cells from Src to Dst.
type Route []Point

// GridResult reports a grid routing query.
type GridResult struct {
	Routable bool
	Decided  bool
	// Chosen[i] is the selected route of net i (when routable).
	Chosen    []Route
	Conflicts int64
	// CandidateCount sums enumerated candidate routes.
	CandidateCount int
}

// enumerateRoutes lists monotone staircase paths from s to d (L-shapes
// and Z-shapes: at most two bends), the classic detailed-routing
// candidate set.
func enumerateRoutes(s, d Point, max int) []Route {
	var out []Route
	addIfNew := func(r Route) {
		if len(out) >= max {
			return
		}
		out = append(out, r)
	}
	dx := sign(d.X - s.X)
	dy := sign(d.Y - s.Y)
	if dx == 0 && dy == 0 {
		return []Route{{s}}
	}
	if dx == 0 || dy == 0 {
		return []Route{straight(s, d)}
	}
	// Z-shapes bending at intermediate x (vertical-horizontal-vertical
	// is covered by bending at each y as well).
	for x := s.X; ; x += dx {
		r := Route{}
		r = append(r, straight(s, Point{x, s.Y})...)
		r = append(r, straight(Point{x, s.Y}, Point{x, d.Y})[1:]...)
		r = append(r, straight(Point{x, d.Y}, d)[1:]...)
		addIfNew(r)
		if x == d.X {
			break
		}
	}
	for y := s.Y; ; y += dy {
		if y != s.Y && y != d.Y {
			r := Route{}
			r = append(r, straight(s, Point{s.X, y})...)
			r = append(r, straight(Point{s.X, y}, Point{d.X, y})[1:]...)
			r = append(r, straight(Point{d.X, y}, d)[1:]...)
			addIfNew(r)
		}
		if y == d.Y {
			break
		}
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func straight(a, b Point) Route {
	var r Route
	dx, dy := sign(b.X-a.X), sign(b.Y-a.Y)
	p := a
	for {
		r = append(r, p)
		if p == b {
			return r
		}
		p = Point{p.X + dx, p.Y + dy}
	}
}

// RouteGrid decides whether all nets can be routed simultaneously:
// exactly one candidate route per net, no two routes of different nets
// sharing a cell. Net terminals block other nets' routes as well.
func RouteGrid(g *Grid, opts Options) *GridResult {
	if opts.MaxRoutesPerNet == 0 {
		opts.MaxRoutesPerNet = 12
	}
	res := &GridResult{}
	routes := make([][]Route, len(g.Nets))
	for i, n := range g.Nets {
		routes[i] = enumerateRoutes(n.Src, n.Dst, opts.MaxRoutesPerNet)
		res.CandidateCount += len(routes[i])
		if len(routes[i]) == 0 {
			res.Decided = true
			return res // trivially unroutable
		}
	}
	f := cnf.New(0)
	varOf := make([][]cnf.Var, len(g.Nets))
	for i := range routes {
		varOf[i] = f.NewVars(len(routes[i]))
		lits := make([]cnf.Lit, len(routes[i]))
		for r := range routes[i] {
			lits[r] = cnf.PosLit(varOf[i][r])
		}
		gen.ExactlyOne(f, lits)
	}
	// Conflicts: routes of different nets sharing any cell.
	for i := 0; i < len(g.Nets); i++ {
		for j := i + 1; j < len(g.Nets); j++ {
			for ri, ra := range routes[i] {
				for rj, rb := range routes[j] {
					if sharesCell(ra, rb) {
						f.Add(cnf.NegLit(varOf[i][ri]), cnf.NegLit(varOf[j][rj]))
					}
				}
			}
		}
	}
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	switch s.Solve() {
	case solver.Sat:
		res.Routable = true
		res.Decided = true
		m := s.Model()
		res.Chosen = make([]Route, len(g.Nets))
		for i := range routes {
			for r := range routes[i] {
				if m.Value(varOf[i][r]) == cnf.True {
					res.Chosen[i] = routes[i][r]
					break
				}
			}
		}
	case solver.Unsat:
		res.Decided = true
	}
	res.Conflicts = s.Stats.Conflicts
	return res
}

func sharesCell(a, b Route) bool {
	set := make(map[Point]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if set[p] {
			return true
		}
	}
	return false
}

// ValidGridRouting verifies a chosen routing: every net connected by its
// route, all routes within bounds, and no shared cells.
func ValidGridRouting(g *Grid, chosen []Route) error {
	used := make(map[Point]int)
	for i, r := range chosen {
		if len(r) == 0 {
			return fmt.Errorf("net %d unrouted", i)
		}
		if r[0] != g.Nets[i].Src || r[len(r)-1] != g.Nets[i].Dst {
			return fmt.Errorf("net %d: endpoints wrong", i)
		}
		for k, p := range r {
			if p.X < 0 || p.X >= g.W || p.Y < 0 || p.Y >= g.H {
				return fmt.Errorf("net %d: out of bounds %v", i, p)
			}
			if k > 0 {
				d := abs(p.X-r[k-1].X) + abs(p.Y-r[k-1].Y)
				if d != 1 {
					return fmt.Errorf("net %d: discontinuous at %v", i, p)
				}
			}
			if prev, ok := used[p]; ok && prev != i {
				return fmt.Errorf("nets %d and %d share cell %v", prev, i, p)
			}
			used[p] = i
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RandomGrid generates a grid instance with n nets and distinct random
// terminals.
func RandomGrid(w, h, n int, seed int64) *Grid {
	rng := rand.New(rand.NewSource(seed))
	g := &Grid{W: w, H: h}
	used := map[Point]bool{}
	pick := func() Point {
		for {
			p := Point{rng.Intn(w), rng.Intn(h)}
			if !used[p] {
				used[p] = true
				return p
			}
		}
	}
	for i := 0; i < n; i++ {
		g.Nets = append(g.Nets, GridNet{Src: pick(), Dst: pick()})
	}
	return g
}
