package route

import (
	"testing"
)

func TestChannelBasics(t *testing.T) {
	// Three pairwise-overlapping nets need 3 tracks.
	ch := &Channel{Nets: []Net{{0, 5}, {1, 6}, {2, 7}}}
	if d := ch.Density(); d != 3 {
		t.Fatalf("density = %d, want 3", d)
	}
	res := RouteChannel(ch, 2, Options{})
	if !res.Decided || res.Routable {
		t.Fatal("2 tracks must be infeasible")
	}
	res = RouteChannel(ch, 3, Options{})
	if !res.Routable {
		t.Fatal("3 tracks must suffice")
	}
	if err := ValidChannelAssignment(ch, res.Track); err != nil {
		t.Fatal(err)
	}
}

func TestChannelDisjointNetsShareTrack(t *testing.T) {
	ch := &Channel{Nets: []Net{{0, 2}, {4, 6}, {8, 9}}}
	tracks, asg, decided := MinTracks(ch, 5, Options{})
	if !decided || tracks != 1 {
		t.Fatalf("disjoint nets fit one track, got %d", tracks)
	}
	if err := ValidChannelAssignment(ch, asg); err != nil {
		t.Fatal(err)
	}
}

func TestVerticalConstraints(t *testing.T) {
	// Two disjoint nets could share a track, but a vertical constraint
	// forces net 0 strictly above (lower index) net 1: 2 tracks needed.
	ch := &Channel{
		Nets: []Net{{0, 2}, {5, 7}},
		Vert: [][2]int{{0, 1}},
	}
	tracks, asg, decided := MinTracks(ch, 4, Options{})
	if !decided || tracks != 2 {
		t.Fatalf("vertical constraint should force 2 tracks, got %d", tracks)
	}
	if asg[0] >= asg[1] {
		t.Fatalf("constraint violated: %v", asg)
	}
}

func TestMinTracksMatchesDensityOnVertFree(t *testing.T) {
	// Without vertical constraints interval-graph colouring needs
	// exactly the density (left-edge algorithm argument).
	for seed := int64(0); seed < 10; seed++ {
		ch := RandomChannel(8, 12, 0, seed)
		tracks, asg, decided := MinTracks(ch, 10, Options{})
		if !decided {
			t.Fatalf("seed %d: undecided", seed)
		}
		if tracks != ch.Density() {
			t.Fatalf("seed %d: tracks %d != density %d", seed, tracks, ch.Density())
		}
		if err := ValidChannelAssignment(ch, asg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestUnroutableWithinMax(t *testing.T) {
	ch := &Channel{Nets: []Net{{0, 5}, {0, 5}, {0, 5}}}
	tracks, _, decided := MinTracks(ch, 2, Options{})
	if !decided || tracks != -1 {
		t.Fatalf("expected -1 (unroutable in 2), got %d", tracks)
	}
}

func TestEnumerateRoutes(t *testing.T) {
	routes := enumerateRoutes(Point{0, 0}, Point{3, 2}, 100)
	if len(routes) == 0 {
		t.Fatal("no routes")
	}
	seen := map[string]bool{}
	for _, r := range routes {
		if r[0] != (Point{0, 0}) || r[len(r)-1] != (Point{3, 2}) {
			t.Fatalf("bad endpoints: %v", r)
		}
		// Monotone staircase of minimal length.
		if len(r) != 3+2+1 {
			t.Fatalf("non-shortest route: %v", r)
		}
		key := ""
		for _, p := range r {
			key += p.String()
		}
		if seen[key] {
			t.Fatalf("duplicate route %v", r)
		}
		seen[key] = true
	}
	// Straight-line case.
	straightRoutes := enumerateRoutes(Point{1, 1}, Point{1, 4}, 100)
	if len(straightRoutes) != 1 || len(straightRoutes[0]) != 4 {
		t.Fatalf("straight route wrong: %v", straightRoutes)
	}
}

func TestGridRoutableAndVerified(t *testing.T) {
	g := &Grid{W: 6, H: 6, Nets: []GridNet{
		{Point{0, 0}, Point{5, 0}},
		{Point{0, 1}, Point{5, 1}},
		{Point{0, 2}, Point{5, 2}},
	}}
	res := RouteGrid(g, Options{})
	if !res.Decided || !res.Routable {
		t.Fatal("parallel nets must route")
	}
	if err := ValidGridRouting(g, res.Chosen); err != nil {
		t.Fatal(err)
	}
}

func TestGridConflictUnroutable(t *testing.T) {
	// Two crossing nets on a single row cannot both route: all candidate
	// paths pass through the shared row cells.
	g := &Grid{W: 4, H: 1, Nets: []GridNet{
		{Point{0, 0}, Point{3, 0}},
		{Point{1, 0}, Point{2, 0}},
	}}
	res := RouteGrid(g, Options{})
	if !res.Decided || res.Routable {
		t.Fatal("overlapping single-row nets must be unroutable")
	}
}

func TestGridCrossingNetsUseDetours(t *testing.T) {
	// Crossing pairs in 2D route around each other via staircase choice.
	g := &Grid{W: 5, H: 5, Nets: []GridNet{
		{Point{0, 2}, Point{4, 2}},
		{Point{2, 0}, Point{2, 4}},
	}}
	res := RouteGrid(g, Options{})
	// The two nets cross; with monotone routes only they always share a
	// cell on row 2 / column 2? A staircase for net 0 must pass every
	// column 0..4 including column 2; net 1 must pass every row
	// including row 2. They conflict only if they share the SAME cell;
	// net 0 can cross column 2 at row 2 only (monotone, fixed row), so
	// it occupies (2,2); net 1 must pass (2, r) for all r — including
	// (2,2). Unroutable with monotone candidates.
	if !res.Decided || res.Routable {
		t.Fatal("perpendicular crossing through a shared point must fail with monotone routes")
	}
	// Shortening net 0 so net 1 can cross row 2 beyond its span makes
	// the instance routable.
	g2 := &Grid{W: 5, H: 5, Nets: []GridNet{
		{Point{0, 2}, Point{2, 2}},
		{Point{3, 0}, Point{4, 4}},
	}}
	res2 := RouteGrid(g2, Options{MaxRoutesPerNet: 20})
	if !res2.Routable {
		t.Fatal("offset crossing should route via staircase")
	}
	if err := ValidGridRouting(g2, res2.Chosen); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGridsVerify(t *testing.T) {
	routable := 0
	for seed := int64(0); seed < 10; seed++ {
		g := RandomGrid(7, 7, 4, seed)
		res := RouteGrid(g, Options{MaxRoutesPerNet: 16})
		if !res.Decided {
			t.Fatalf("seed %d: undecided", seed)
		}
		if res.Routable {
			routable++
			if err := ValidGridRouting(g, res.Chosen); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
	if routable == 0 {
		t.Fatal("no random instance routed; generator or router broken")
	}
}

func (p Point) String() string {
	return string(rune('0'+p.X)) + "," + string(rune('0'+p.Y)) + ";"
}
