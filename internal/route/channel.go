// Package route implements SAT-based layout routing (paper §3; [Nam,
// Sakallah & Rutenbar], [Sherwani]). Two models are provided:
//
//   - classic channel routing as track assignment: each net occupies a
//     horizontal interval and must be assigned one of H tracks such
//     that horizontally overlapping nets use different tracks and
//     vertical (pin-ordering) constraints are respected; the minimum
//     track count is found by searching H with a SAT feasibility query
//     per value, and
//
//   - FPGA-style detailed grid routing: each two-pin net selects one of
//     its enumerated candidate paths through a capacity-1 routing grid,
//     with conflict clauses excluding resource sharing.
package route

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

// Net is a channel-routing net occupying columns [Left, Right].
type Net struct {
	Left, Right int
}

// Channel is a channel routing instance.
type Channel struct {
	Nets []Net
	// Vert lists vertical constraints (a, b): net a must be assigned a
	// strictly lower track than net b (pin ordering at some column).
	Vert [][2]int
}

// Density returns the channel density: the maximum number of nets
// crossing any column — a lower bound on the required tracks.
func (ch *Channel) Density() int {
	max := 0
	for col := minLeft(ch); col <= maxRight(ch); col++ {
		n := 0
		for _, net := range ch.Nets {
			if net.Left <= col && col <= net.Right {
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

func minLeft(ch *Channel) int {
	m := 1 << 30
	for _, n := range ch.Nets {
		if n.Left < m {
			m = n.Left
		}
	}
	return m
}

func maxRight(ch *Channel) int {
	m := -(1 << 30)
	for _, n := range ch.Nets {
		if n.Right > m {
			m = n.Right
		}
	}
	return m
}

// overlaps reports whether two nets share a column.
func overlaps(a, b Net) bool {
	return a.Left <= b.Right && b.Left <= a.Right
}

// ChannelResult reports a routability query.
type ChannelResult struct {
	Routable bool
	Decided  bool
	// Track[i] is net i's assigned track (0-based) when routable.
	Track     []int
	Conflicts int64
}

// RouteChannel asks whether the channel is routable in `tracks` tracks.
func RouteChannel(ch *Channel, tracks int, opts Options) *ChannelResult {
	res := &ChannelResult{}
	n := len(ch.Nets)
	if n == 0 {
		res.Routable = true
		res.Decided = true
		return res
	}
	f := cnf.New(n * tracks)
	v := func(net, track int) cnf.Var { return cnf.Var(net*tracks + track + 1) }
	for i := 0; i < n; i++ {
		lits := make([]cnf.Lit, tracks)
		for t := 0; t < tracks; t++ {
			lits[t] = cnf.PosLit(v(i, t))
		}
		gen.ExactlyOne(f, lits)
	}
	// Horizontal overlap: different tracks.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if overlaps(ch.Nets[i], ch.Nets[j]) {
				for t := 0; t < tracks; t++ {
					f.Add(cnf.NegLit(v(i, t)), cnf.NegLit(v(j, t)))
				}
			}
		}
	}
	// Vertical constraints: track(a) < track(b).
	for _, vc := range ch.Vert {
		a, b := vc[0], vc[1]
		for ta := 0; ta < tracks; ta++ {
			for tb := 0; tb <= ta; tb++ {
				f.Add(cnf.NegLit(v(a, ta)), cnf.NegLit(v(b, tb)))
			}
		}
	}
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	switch s.Solve() {
	case solver.Sat:
		res.Routable = true
		res.Decided = true
		m := s.Model()
		res.Track = make([]int, n)
		for i := 0; i < n; i++ {
			res.Track[i] = -1
			for t := 0; t < tracks; t++ {
				if m.Value(v(i, t)) == cnf.True {
					res.Track[i] = t
					break
				}
			}
		}
	case solver.Unsat:
		res.Decided = true
	}
	res.Conflicts = s.Stats.Conflicts
	return res
}

// MinTracks finds the minimum routable track count by linear search from
// the density lower bound. It returns (tracks, assignment, decided).
func MinTracks(ch *Channel, maxTracks int, opts Options) (int, []int, bool) {
	lb := ch.Density()
	if lb == 0 {
		return 0, nil, true
	}
	for h := lb; h <= maxTracks; h++ {
		res := RouteChannel(ch, h, opts)
		if !res.Decided {
			return 0, nil, false
		}
		if res.Routable {
			return h, res.Track, true
		}
	}
	return -1, nil, true // not routable within maxTracks
}

// ValidChannelAssignment checks a track assignment against all
// constraints.
func ValidChannelAssignment(ch *Channel, track []int) error {
	for i := range ch.Nets {
		if track[i] < 0 {
			return fmt.Errorf("net %d unassigned", i)
		}
	}
	for i := range ch.Nets {
		for j := i + 1; j < len(ch.Nets); j++ {
			if overlaps(ch.Nets[i], ch.Nets[j]) && track[i] == track[j] {
				return fmt.Errorf("nets %d and %d overlap on track %d", i, j, track[i])
			}
		}
	}
	for _, vc := range ch.Vert {
		if track[vc[0]] >= track[vc[1]] {
			return fmt.Errorf("vertical constraint %d<%d violated (%d >= %d)",
				vc[0], vc[1], track[vc[0]], track[vc[1]])
		}
	}
	return nil
}

// RandomChannel generates a random channel instance with n nets over
// `cols` columns and optional acyclic vertical constraints.
func RandomChannel(n, cols, vert int, seed int64) *Channel {
	rng := rand.New(rand.NewSource(seed))
	ch := &Channel{}
	for i := 0; i < n; i++ {
		a := rng.Intn(cols)
		b := rng.Intn(cols)
		if a > b {
			a, b = b, a
		}
		ch.Nets = append(ch.Nets, Net{Left: a, Right: b})
	}
	// Acyclic vertical constraints: always from lower to higher index.
	for k := 0; k < vert; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		ch.Vert = append(ch.Vert, [2]int{a, b})
	}
	return ch
}
