// Package gen generates benchmark CNF workloads: uniform random k-SAT,
// pigeonhole formulas, XOR (parity) chains, graph colouring and N-queens.
// These are the standard instance families used to exercise the solver
// configurations the paper compares (§4, §6).
package gen

import (
	"math/rand"

	"repro/internal/cnf"
)

// RandomKSAT returns a uniform random k-SAT formula with n variables and
// m clauses. Each clause has k distinct variables with random polarities.
// The classic hard region for 3-SAT is m/n ≈ 4.26.
func RandomKSAT(n, m, k int, seed int64) *cnf.Formula {
	if k > n {
		panic("gen: k > n")
	}
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		seen := make(map[int]bool, k)
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := rng.Intn(n) + 1
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}
	return f
}

// Random3SATHard returns a random 3-SAT instance at the hard
// clause-to-variable ratio 4.26.
func Random3SATHard(n int, seed int64) *cnf.Formula {
	return RandomKSAT(n, int(4.26*float64(n)), 3, seed)
}

// Pigeonhole returns the propositional pigeonhole principle PHP(n+1, n):
// n+1 pigeons cannot fit in n holes, one pigeon per hole. The formula is
// unsatisfiable and exponentially hard for resolution — the classic
// structured UNSAT benchmark for backtrack search.
//
// Variable p_{i,h} (pigeon i in hole h) is i*n + h + 1 for i in [0,n],
// h in [0,n-1].
func Pigeonhole(n int) *cnf.Formula {
	f := cnf.New((n + 1) * n)
	v := func(i, h int) cnf.Var { return cnf.Var(i*n + h + 1) }
	// Every pigeon is in some hole.
	for i := 0; i <= n; i++ {
		c := make(cnf.Clause, n)
		for h := 0; h < n; h++ {
			c[h] = cnf.PosLit(v(i, h))
		}
		f.AddClause(c)
	}
	// No two pigeons share a hole.
	for h := 0; h < n; h++ {
		for i := 0; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				f.Add(cnf.NegLit(v(i, h)), cnf.NegLit(v(j, h)))
			}
		}
	}
	return f
}

// XorClause appends CNF clauses encoding l1 ⊕ l2 ⊕ … ⊕ lk = rhs to f.
// The expansion is exponential in k; intended for short chains (k ≤ 4).
func XorClause(f *cnf.Formula, lits []cnf.Lit, rhs bool) {
	k := len(lits)
	for mask := 0; mask < 1<<k; mask++ {
		// A clause is emitted for every assignment violating the parity.
		neg := 0
		c := make(cnf.Clause, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				c[i] = lits[i].Not()
				neg++
			} else {
				c[i] = lits[i]
			}
		}
		// The clause forbids the assignment where all its literals are
		// false, i.e. lits[i] = (mask bit i). That assignment has parity
		// (number of set bits) mod 2; forbid those with the wrong parity.
		parity := neg%2 == 1
		if parity != rhs {
			f.AddClause(c)
		}
	}
}

// XorChain returns a chained parity formula: x1⊕x2=c1, x2⊕x3=c2, …,
// with a closing constraint x_n⊕x_1=cn chosen so the total parity is odd
// (unsat=true) or even (unsat=false). These formulas are easy for
// equivalency reasoning but hard for plain resolution-style search.
func XorChain(n int, unsat bool, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(n)
	total := false
	for i := 1; i < n; i++ {
		rhs := rng.Intn(2) == 0
		total = total != rhs
		XorClause(f, []cnf.Lit{cnf.PosLit(cnf.Var(i)), cnf.PosLit(cnf.Var(i + 1))}, rhs)
	}
	// Closing edge: choose rhs so the cycle parity is odd iff unsat.
	rhs := total != unsat
	XorClause(f, []cnf.Lit{cnf.PosLit(cnf.Var(n)), cnf.PosLit(cnf.Var(1))}, rhs)
	return f
}

// AtMostOne appends pairwise at-most-one constraints over lits.
func AtMostOne(f *cnf.Formula, lits []cnf.Lit) {
	for i := range lits {
		for j := i + 1; j < len(lits); j++ {
			f.Add(lits[i].Not(), lits[j].Not())
		}
	}
}

// ExactlyOne appends an exactly-one constraint over lits.
func ExactlyOne(f *cnf.Formula, lits []cnf.Lit) {
	f.AddClause(append(cnf.Clause(nil), lits...))
	AtMostOne(f, lits)
}

// GraphColoring returns a k-colouring formula for a random graph with n
// nodes and m edges (no self loops, duplicates allowed to keep it simple).
// Variable x_{v,c} = node v has colour c, laid out v*k + c + 1.
func GraphColoring(n, m, k int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(n * k)
	v := func(node, c int) cnf.Var { return cnf.Var(node*k + c + 1) }
	for node := 0; node < n; node++ {
		lits := make([]cnf.Lit, k)
		for c := 0; c < k; c++ {
			lits[c] = cnf.PosLit(v(node, c))
		}
		ExactlyOne(f, lits)
	}
	for e := 0; e < m; e++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		for c := 0; c < k; c++ {
			f.Add(cnf.NegLit(v(a, c)), cnf.NegLit(v(b, c)))
		}
	}
	return f
}

// Queens returns the N-queens problem as CNF: variable q_{r,c} = queen at
// row r column c (r*n + c + 1). Satisfiable for n = 1 and n >= 4.
func Queens(n int) *cnf.Formula {
	f := cnf.New(n * n)
	v := func(r, c int) cnf.Var { return cnf.Var(r*n + c + 1) }
	for r := 0; r < n; r++ {
		row := make([]cnf.Lit, n)
		for c := 0; c < n; c++ {
			row[c] = cnf.PosLit(v(r, c))
		}
		ExactlyOne(f, row)
	}
	for c := 0; c < n; c++ {
		col := make([]cnf.Lit, n)
		for r := 0; r < n; r++ {
			col[r] = cnf.PosLit(v(r, c))
		}
		AtMostOne(f, col)
	}
	// Diagonals.
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := r1 + 1; r2 < n; r2++ {
				d := r2 - r1
				for _, c2 := range []int{c1 - d, c1 + d} {
					if c2 >= 0 && c2 < n {
						f.Add(cnf.NegLit(v(r1, c1)), cnf.NegLit(v(r2, c2)))
					}
				}
			}
		}
	}
	return f
}

// EquivalenceLadder builds a satisfiable formula consisting of n
// equivalence constraints x_i ≡ x_{i+1} plus a sprinkling of random
// ternary clauses over the chained variables. It is the natural workload
// for equivalency reasoning (§6): substitution collapses the chain to a
// single variable.
func EquivalenceLadder(n, extra int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(n)
	for i := 1; i < n; i++ {
		x, y := cnf.Var(i), cnf.Var(i+1)
		f.Add(cnf.PosLit(x), cnf.NegLit(y))
		f.Add(cnf.NegLit(x), cnf.PosLit(y))
	}
	for e := 0; e < extra; e++ {
		a := cnf.Var(rng.Intn(n) + 1)
		b := cnf.Var(rng.Intn(n) + 1)
		c := cnf.Var(rng.Intn(n) + 1)
		// All-positive ternary clauses keep the formula satisfiable
		// (set everything true).
		f.Add(cnf.PosLit(a), cnf.PosLit(b), cnf.PosLit(c))
	}
	return f
}

// DuplicateWithEquivalences returns an equisatisfiable copy of f over
// twice the variables: every variable x_i gains a duplicate x'_i tied by
// the equivalence clauses (x_i + ¬x'_i)(¬x_i + x'_i), and each literal
// occurrence of f randomly refers to the original or the duplicate.
// Equivalency reasoning (§6) collapses the instance back to f; without
// it the solver faces a doubled variable space.
func DuplicateWithEquivalences(f *cnf.Formula, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	n := f.NumVars()
	out := cnf.New(2 * n)
	dup := func(v cnf.Var) cnf.Var { return v + cnf.Var(n) }
	for v := cnf.Var(1); int(v) <= n; v++ {
		out.Add(cnf.PosLit(v), cnf.NegLit(dup(v)))
		out.Add(cnf.NegLit(v), cnf.PosLit(dup(v)))
	}
	for _, c := range f.Clauses {
		d := make(cnf.Clause, len(c))
		for i, l := range c {
			v := l.Var()
			if rng.Intn(2) == 0 {
				v = dup(v)
			}
			d[i] = cnf.NewLit(v, l.IsNeg())
		}
		out.AddClause(d)
	}
	return out
}
