package gen

import (
	"testing"

	"repro/internal/cnf"
)

func TestRandomKSATShape(t *testing.T) {
	f := RandomKSAT(20, 85, 3, 1)
	if f.NumVars() != 20 || f.NumClauses() != 85 {
		t.Fatalf("shape: %d vars %d clauses", f.NumVars(), f.NumClauses())
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause width %d", len(c))
		}
		seen := map[cnf.Var]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
	// Determinism.
	g := RandomKSAT(20, 85, 3, 1)
	for i := range f.Clauses {
		if f.Clauses[i].String() != g.Clauses[i].String() {
			t.Fatal("same seed must give same formula")
		}
	}
	h := RandomKSAT(20, 85, 3, 2)
	same := true
	for i := range f.Clauses {
		if f.Clauses[i].String() != h.Clauses[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical formulas")
	}
}

func TestPigeonholeStructure(t *testing.T) {
	f := Pigeonhole(3)
	// 4 pigeons x 3 holes: 12 vars; 4 pigeon clauses + 3*C(4,2)=18 hole
	// clauses.
	if f.NumVars() != 12 || f.NumClauses() != 22 {
		t.Fatalf("PHP(3): %d vars %d clauses", f.NumVars(), f.NumClauses())
	}
	if sat, _ := cnf.BruteForce(Pigeonhole(2)); sat {
		t.Fatal("PHP(2) must be UNSAT")
	}
}

func TestXorChainParity(t *testing.T) {
	for _, unsat := range []bool{false, true} {
		f := XorChain(6, unsat, 5)
		sat, _ := cnf.BruteForce(f)
		if sat == unsat {
			t.Fatalf("XorChain(unsat=%v) got sat=%v", unsat, sat)
		}
	}
}

func TestXorClauseSemantics(t *testing.T) {
	// x1 ⊕ x2 ⊕ x3 = 1 has exactly 4 of 8 models.
	f := cnf.New(3)
	XorClause(f, []cnf.Lit{cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3)}, true)
	if n := cnf.CountModels(f); n != 4 {
		t.Fatalf("odd-parity models = %d, want 4", n)
	}
	g := cnf.New(3)
	XorClause(g, []cnf.Lit{cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3)}, false)
	if n := cnf.CountModels(g); n != 4 {
		t.Fatalf("even-parity models = %d, want 4", n)
	}
}

func TestExactlyOne(t *testing.T) {
	f := cnf.New(4)
	lits := []cnf.Lit{cnf.PosLit(1), cnf.PosLit(2), cnf.PosLit(3), cnf.PosLit(4)}
	ExactlyOne(f, lits)
	if n := cnf.CountModels(f); n != 4 {
		t.Fatalf("exactly-one models = %d, want 4", n)
	}
}

func TestQueensCounts(t *testing.T) {
	// N-queens solution counts: N=4 -> 2, N=5 -> 10.
	if n := cnf.CountModels(Queens(4)); n != 2 {
		t.Fatalf("queens(4) models = %d, want 2", n)
	}
	if sat, _ := cnf.BruteForce(Queens(3)); sat {
		t.Fatal("queens(3) must be UNSAT")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// Very sparse graph with 3 colours: SAT.
	f := GraphColoring(5, 4, 3, 7)
	if sat, _ := cnf.BruteForce(f); !sat {
		t.Fatal("sparse 3-colouring should be SAT")
	}
}

func TestEquivalenceLadderSat(t *testing.T) {
	f := EquivalenceLadder(6, 5, 2)
	sat, m := cnf.BruteForce(f)
	if !sat {
		t.Fatal("ladder must be SAT")
	}
	// All chained variables equal.
	for v := cnf.Var(2); int(v) <= 6; v++ {
		if m.Value(v) != m.Value(1) {
			t.Fatal("equivalence chain violated in model")
		}
	}
}
