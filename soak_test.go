package sateda

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/dpll"
	"repro/internal/gen"
	"repro/internal/solver"
)

// TestSoakSolverConfigs cross-checks every solver configuration against
// the independent DPLL implementation on many medium instances (too big
// for brute force, small enough for DPLL).
func TestSoakSolverConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	configs := map[string]solver.Options{
		"default":    {},
		"chrono":     {Chronological: true},
		"nolearn":    {NoLearning: true},
		"relevance":  {Deletion: solver.DeleteByRelevance, RelevanceBound: 2, MaxLearnts: 10},
		"restarts":   {Restart: solver.RestartLuby, RestartBase: 4, RandomFreq: 0.2, Seed: 5},
		"dlis":       {Decide: solver.DecideDLIS},
		"proof":      {LogProof: true},
		"tiny-db":    {MaxLearnts: 1},
		"nominimize": {NoMinimize: true},
	}
	for seed := int64(0); seed < 25; seed++ {
		f := gen.RandomKSAT(18, 76, 3, seed) // near threshold, mixed phase
		ref := dpll.Solve(f, dpll.Options{})
		for name, opt := range configs {
			s := solver.FromFormula(f, opt)
			st := s.Solve()
			if (st == solver.Sat) != ref.Sat {
				t.Fatalf("seed %d config %s: %v vs dpll %v", seed, name, st, ref.Sat)
			}
			if st == solver.Sat {
				if err := solver.VerifyModel(f, s.Model()); err != nil {
					t.Fatalf("seed %d config %s: %v", seed, name, err)
				}
			} else if opt.LogProof {
				if err := solver.VerifyUnsat(f, s.Proof()); err != nil {
					t.Fatalf("seed %d config %s: proof rejected: %v", seed, name, err)
				}
			}
		}
	}
}

// TestSoakPipelineOnStructured runs the full pipeline over structured
// families where verdicts are known analytically.
func TestSoakPipelineOnStructured(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	type wl struct {
		f    *cnf.Formula
		sat  bool
		name string
	}
	var workloads []wl
	for n := 3; n <= 6; n++ {
		workloads = append(workloads, wl{gen.Pigeonhole(n), false, "php"})
	}
	for n := 8; n <= 24; n += 4 {
		workloads = append(workloads, wl{gen.XorChain(n, true, int64(n)), false, "xorU"})
		workloads = append(workloads, wl{gen.XorChain(n, false, int64(n)), true, "xorS"})
	}
	workloads = append(workloads, wl{gen.Queens(8), true, "queens"})
	for _, w := range workloads {
		s := solver.FromFormula(w.f, solver.Options{LogProof: true})
		st := s.Solve()
		if (st == solver.Sat) != w.sat {
			t.Fatalf("%s: got %v want sat=%v", w.name, st, w.sat)
		}
		if st == solver.Sat {
			if err := solver.VerifyModel(w.f, s.Model()); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := solver.VerifyUnsat(w.f, s.Proof()); err != nil {
				t.Fatalf("%s: %v", w.name, err)
			}
		}
	}
}
