package sateda

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/dpll"
	"repro/internal/gen"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// TestSoakSolverConfigs cross-checks every solver configuration against
// the independent DPLL implementation on many medium instances (too big
// for brute force, small enough for DPLL).
func TestSoakSolverConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	configs := map[string]solver.Options{
		"default":    {},
		"chrono":     {Chronological: true},
		"nolearn":    {NoLearning: true},
		"relevance":  {Deletion: solver.DeleteByRelevance, RelevanceBound: 2, MaxLearnts: 10},
		"restarts":   {Restart: solver.RestartLuby, RestartBase: 4, RandomFreq: 0.2, Seed: 5},
		"dlis":       {Decide: solver.DecideDLIS},
		"proof":      {LogProof: true},
		"tiny-db":    {MaxLearnts: 1},
		"nominimize": {NoMinimize: true},
		// Inprocessing at every restart boundary, so rounds fire even on
		// these small instances: all transforms together, each alone, and
		// a starvation budget (rounds scheduled but cut short mid-clause).
		"inprocess": {Inprocess: true, InprocessVarElim: true,
			InprocessEvery: 1, Restart: solver.RestartFixed, RestartBase: 2},
		"inprocess-vivify": {Inprocess: true, InprocessNoSubsume: true,
			InprocessEvery: 1, Restart: solver.RestartFixed, RestartBase: 2},
		"inprocess-subsume": {Inprocess: true, InprocessNoVivify: true,
			InprocessEvery: 1, Restart: solver.RestartFixed, RestartBase: 2},
		"inprocess-varelim": {Inprocess: true, InprocessVarElim: true,
			InprocessNoVivify: true, InprocessNoSubsume: true,
			InprocessEvery: 1, Restart: solver.RestartFixed, RestartBase: 2},
		"inprocess-starved": {Inprocess: true, InprocessVarElim: true,
			InprocessBudget: 20, InprocessEvery: 1,
			Restart: solver.RestartFixed, RestartBase: 2},
	}
	for seed := int64(0); seed < 25; seed++ {
		f := gen.RandomKSAT(18, 76, 3, seed) // near threshold, mixed phase
		ref := dpll.Solve(f, dpll.Options{})
		for name, opt := range configs {
			s := solver.FromFormula(f, opt)
			st := s.Solve()
			if (st == solver.Sat) != ref.Sat {
				t.Fatalf("seed %d config %s: %v vs dpll %v", seed, name, st, ref.Sat)
			}
			if st == solver.Sat {
				if err := solver.VerifyModel(f, s.Model()); err != nil {
					t.Fatalf("seed %d config %s: %v", seed, name, err)
				}
			} else if opt.LogProof {
				if err := solver.VerifyUnsat(f, s.Proof()); err != nil {
					t.Fatalf("seed %d config %s: proof rejected: %v", seed, name, err)
				}
			}
		}
	}
}

// TestSoakPortfolioChurn cycles adaptive portfolio solves with a
// kill/respawn-heavy schedule and asserts the process stays stable:
// verdicts agree with the DPLL reference every cycle, every spawned
// goroutine is joined (the goroutine count cannot creep), and the
// shared pool never outgrows its cap.
func TestSoakPortfolioChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Settle and measure the baseline goroutine count.
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	opts := portfolio.Options{
		Workers:     4,
		Adaptive:    true,
		Grace:       2 * time.Millisecond, // churn hard
		KillBelow:   2,
		MaxRespawns: 6,
		PoolCap:     256,
	}
	var kills, respawns int
	for cycle := 0; cycle < 24; cycle++ {
		// Instances sized to outlive a few supervisor samples (grace
		// 2ms), so kills and respawns actually happen; the sequential
		// CDCL solver is the agreement reference (DPLL would dominate
		// the soak's runtime at these sizes).
		var f *cnf.Formula
		switch cycle % 3 {
		case 0:
			f = gen.Random3SATHard(110, int64(cycle))
		case 1:
			f = gen.Pigeonhole(6)
		default:
			f = gen.XorChain(26, cycle%2 == 0, int64(cycle))
		}
		want := solver.FromFormula(f, solver.Options{}).Solve()
		opts.Seed = int64(cycle)
		res := portfolio.Solve(context.Background(), f, opts)
		if res.Status == solver.Unknown {
			t.Fatalf("cycle %d: adaptive portfolio returned Unknown without budget or cancel", cycle)
		}
		if res.Status != want {
			t.Fatalf("cycle %d: portfolio=%v sequential=%v", cycle, res.Status, want)
		}
		if res.Status == solver.Sat && !res.Model.Satisfies(f) {
			t.Fatalf("cycle %d: model does not satisfy the formula", cycle)
		}
		if res.Pool.Held > 256 {
			t.Fatalf("cycle %d: pool outgrew its cap: %+v", cycle, res.Pool)
		}
		if len(res.Workers) != opts.Workers+res.Respawns {
			t.Fatalf("cycle %d: lineage incomplete: %d reports for %d slots + %d respawns",
				cycle, len(res.Workers), opts.Workers, res.Respawns)
		}
		kills += res.Kills
		respawns += res.Respawns
	}
	// Not every cycle churns (fast instances finish before the first
	// sample), but across the mix the stress schedule must have
	// scheduled — otherwise this test is not testing adaptive teardown.
	if kills == 0 && respawns == 0 {
		t.Fatal("no churn across the soak: every instance finished before the first supervisor sample")
	}

	// Every worker goroutine must have been joined: allow scheduler
	// slack, but a per-cycle leak of even one goroutine would show.
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across churn cycles: baseline %d, now %d", baseline, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSoakPipelineOnStructured runs the full pipeline over structured
// families where verdicts are known analytically.
func TestSoakPipelineOnStructured(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	type wl struct {
		f    *cnf.Formula
		sat  bool
		name string
	}
	var workloads []wl
	for n := 3; n <= 6; n++ {
		workloads = append(workloads, wl{gen.Pigeonhole(n), false, "php"})
	}
	for n := 8; n <= 24; n += 4 {
		workloads = append(workloads, wl{gen.XorChain(n, true, int64(n)), false, "xorU"})
		workloads = append(workloads, wl{gen.XorChain(n, false, int64(n)), true, "xorS"})
	}
	workloads = append(workloads, wl{gen.Queens(8), true, "queens"})
	for _, w := range workloads {
		s := solver.FromFormula(w.f, solver.Options{LogProof: true})
		st := s.Solve()
		if (st == solver.Sat) != w.sat {
			t.Fatalf("%s: got %v want sat=%v", w.name, st, w.sat)
		}
		if st == solver.Sat {
			if err := solver.VerifyModel(w.f, s.Model()); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := solver.VerifyUnsat(w.f, s.Proof()); err != nil {
				t.Fatalf("%s: %v", w.name, err)
			}
		}
	}
}
