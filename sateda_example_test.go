package sateda_test

import (
	"context"
	"fmt"

	sateda "repro"
	"repro/internal/cec"
)

// The basic CNF workflow: build, solve, read the model.
func ExampleNewSolver() {
	f := sateda.NewFormula(3)
	f.AddDIMACS(1, 2)  // x1 ∨ x2
	f.AddDIMACS(-1, 3) // ¬x1 ∨ x3
	f.AddDIMACS(-2)    // ¬x2
	s := sateda.NewSolver(f, sateda.SolverOptions{})
	fmt.Println(s.Solve())
	fmt.Println("x1:", s.Value(1))
	// Output:
	// SATISFIABLE
	// x1: 1
}

// Proving two circuits equivalent through the facade.
func ExampleCheckEquivalence() {
	a := sateda.RippleAdder(3)
	b := sateda.RippleAdder(3)
	res, err := sateda.CheckEquivalence(a, b, cec.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("equivalent:", res.Equivalent)
	// Output:
	// equivalent: true
}

// Solving a circuit property with the paper's Figure 2 pipeline.
func ExampleSolvePipeline() {
	c := sateda.C17()
	f, _ := sateda.EncodeProperty(c, c.Outputs[0], true)
	ans := sateda.SolvePipeline(f, sateda.PipelineOptions{EquivalencyReasoning: true})
	fmt.Println(ans.Status)
	// Output:
	// SATISFIABLE
}

// Racing diversified solver configurations with clause sharing: the
// verdict is deterministic even though the winning worker is not.
func ExampleSolvePortfolio() {
	f := sateda.Pigeonhole(6) // 7 pigeons, 6 holes: UNSAT
	res := sateda.SolvePortfolio(context.Background(), f,
		sateda.PortfolioOptions{Workers: 2})
	fmt.Println(res.Status)
	fmt.Println("workers reporting:", len(res.Workers))
	// Output:
	// UNSATISFIABLE
	// workers reporting: 2
}
