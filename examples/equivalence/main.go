// Equivalence checking: verify a ripple-carry adder against a NAND-NAND
// "optimized" implementation (plain miter vs the simulation-guided
// internal-equivalence engine), then catch an injected bug and print the
// distinguishing counterexample.
package main

import (
	"fmt"

	sateda "repro"
)

// nandAdder builds the same adder function from NAND-style carry logic.
func nandAdder(n int) *sateda.Circuit {
	c := sateda.NewCircuit()
	as := make([]sateda.NodeID, n)
	bs := make([]sateda.NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		axb := c.AddGate(sateda.Xor, fmt.Sprintf("x%d", i), as[i], bs[i])
		s := c.AddGate(sateda.Xor, fmt.Sprintf("s%d", i), axb, carry)
		c.MarkOutput(s)
		n1 := c.AddGate(sateda.Nand, fmt.Sprintf("n1_%d", i), as[i], bs[i])
		n2 := c.AddGate(sateda.Nand, fmt.Sprintf("n2_%d", i), axb, carry)
		carry = c.AddGate(sateda.Nand, fmt.Sprintf("c%d", i), n1, n2)
	}
	c.MarkOutput(carry)
	return c
}

func main() {
	const bits = 6
	golden := sateda.RippleAdder(bits)
	revised := nandAdder(bits)
	fmt.Printf("golden: %d gates; revised: %d gates\n", golden.NumGates(), revised.NumGates())

	plain, err := sateda.CheckEquivalence(golden, revised, sateda.CECOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("plain miter:    equivalent=%v  conflicts=%d  satcalls=%d\n",
		plain.Equivalent, plain.Conflicts, plain.SATCalls)

	internal, err := sateda.CheckEquivalence(golden, revised, sateda.CECOptions{Internal: true, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("internal-equiv: equivalent=%v  conflicts=%d  satcalls=%d  candidates=%d proven=%d\n",
		internal.Equivalent, internal.Conflicts, internal.SATCalls,
		internal.Candidates, internal.Proven)

	// Inject a bug: flip one XOR to XNOR.
	buggy := revised.Clone()
	for i := range buggy.Nodes {
		if buggy.Nodes[i].Type == sateda.Xor {
			buggy.Nodes[i].Type = sateda.Xnor
			break
		}
	}
	res, err := sateda.CheckEquivalence(golden, buggy, sateda.CECOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("buggy revision: equivalent=%v\n", res.Equivalent)
	if res.Counterexample != nil {
		fmt.Print("counterexample:")
		for i, v := range res.Counterexample {
			bit := 0
			if v {
				bit = 1
			}
			fmt.Printf(" %s=%d", golden.Name(golden.Inputs[i]), bit)
		}
		fmt.Println()
	}
}
