// SAT-based routing: find the minimum track count for a routing channel
// (with vertical constraints pushing past the density lower bound) and
// route two-pin nets on an FPGA-style grid, showing how SAT proves both
// routability and unroutability.
package main

import (
	"fmt"

	sateda "repro"
	"repro/internal/route"
)

func main() {
	// Channel routing: nets as horizontal intervals, vertical
	// constraints from pin ordering.
	ch := &sateda.Channel{
		Nets: []route.Net{
			{Left: 0, Right: 4},
			{Left: 2, Right: 7},
			{Left: 5, Right: 9},
			{Left: 1, Right: 3},
			{Left: 6, Right: 8},
		},
		Vert: [][2]int{{0, 1}, {1, 2}},
	}
	fmt.Printf("channel: %d nets, density (lower bound) = %d\n", len(ch.Nets), ch.Density())
	tracks, asg, decided := sateda.MinTracks(ch, 8, route.Options{})
	fmt.Printf("min tracks = %d (decided=%v), assignment %v\n", tracks, decided, asg)

	for h := ch.Density(); h <= tracks; h++ {
		r := sateda.RouteChannel(ch, h, route.Options{})
		fmt.Printf("  %d tracks: routable=%v (conflicts %d)\n", h, r.Routable, r.Conflicts)
	}

	// Grid routing: three ascending nets nest once SAT picks compatible
	// staircases; a saturated single row does not route.
	g := &sateda.Grid{W: 6, H: 4, Nets: []route.GridNet{
		{Src: route.Point{X: 0, Y: 0}, Dst: route.Point{X: 5, Y: 1}},
		{Src: route.Point{X: 0, Y: 1}, Dst: route.Point{X: 5, Y: 2}},
		{Src: route.Point{X: 0, Y: 2}, Dst: route.Point{X: 5, Y: 3}},
	}}
	res := sateda.RouteGrid(g, route.Options{MaxRoutesPerNet: 16})
	fmt.Printf("\ngrid 6x4, 3 nets: routable=%v (candidates %d, conflicts %d)\n",
		res.Routable, res.CandidateCount, res.Conflicts)
	if res.Routable {
		for i, r := range res.Chosen {
			fmt.Printf("  net %d: %v\n", i, r)
		}
		if err := route.ValidGridRouting(g, res.Chosen); err != nil {
			panic(err)
		}
		fmt.Println("  routing verified: no shared cells")
	}

	bad := &sateda.Grid{W: 4, H: 1, Nets: []route.GridNet{
		{Src: route.Point{X: 0, Y: 0}, Dst: route.Point{X: 3, Y: 0}},
		{Src: route.Point{X: 1, Y: 0}, Dst: route.Point{X: 2, Y: 0}},
	}}
	res2 := sateda.RouteGrid(bad, route.Options{})
	fmt.Printf("grid 4x1, overlapping nets: routable=%v (UNSAT proof)\n", res2.Routable)
}
