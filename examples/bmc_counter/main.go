// Bounded model checking: find the exact counterexample depth of a
// counter reaching a bad value, replay the trace on the sequential
// simulator, and prove a true invariant (one-hot ring rotation) by
// k-induction.
package main

import (
	"fmt"

	sateda "repro"
)

func main() {
	// An 5-bit counter; bad = (count == 21). The shortest violation
	// takes exactly 21 steps from reset.
	ctr := sateda.NewCounter(5, 21)
	res := sateda.BMCCheck(ctr, 32, sateda.BMCOptions{})
	fmt.Printf("counter: violated=%v depth=%d satcalls=%d conflicts=%d\n",
		res.Violated, res.Depth, res.SATCalls, res.Conflicts)

	// Replay the trace through the reference sequential simulator.
	state := ctr.InitialState()
	for t := 0; t < res.Depth; t++ {
		state, _ = ctr.Step(state, res.Trace.Inputs[t])
	}
	val := 0
	for i, b := range state {
		if b {
			val |= 1 << i
		}
	}
	fmt.Printf("replayed state after %d steps: %d (bad target 21)\n", res.Depth, val)

	// Within a smaller bound the design is safe.
	safe := sateda.BMCCheck(ctr, 20, sateda.BMCOptions{})
	fmt.Printf("bounded to 20 steps: violated=%v\n", safe.Violated)

	// A true invariant: one-hotness of a rotating ring counter. BMC can
	// only ever say "safe up to k"; k-induction proves it outright.
	ring := sateda.NewRingOneHot(6)
	bounded := sateda.BMCCheck(ring, 15, sateda.BMCOptions{})
	fmt.Printf("ring one-hot, BMC to depth 15: violated=%v (no proof)\n", bounded.Violated)
	proved, decided := sateda.BMCInduction(ring, 1, sateda.BMCOptions{})
	fmt.Printf("ring one-hot, 1-induction: proved=%v decided=%v\n", proved, decided)
}
