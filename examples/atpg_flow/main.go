// ATPG flow: generate stuck-at tests for a 4-bit ripple-carry adder
// three ways — plain SAT per fault, the §5 structural layer (partial,
// non-overspecified patterns), and incremental SAT across the fault
// list — then compare effort and pattern specification, and finish with
// redundancy identification on a deliberately redundant circuit.
package main

import (
	"fmt"

	sateda "repro"
)

func run(name string, c *sateda.Circuit, opts sateda.ATPGOptions) *sateda.ATPGReport {
	rep := sateda.GenerateTests(c, opts)
	spec := 100.0
	if rep.PatternBits > 0 {
		spec = 100 * float64(rep.SpecifiedBits) / float64(rep.PatternBits)
	}
	fmt.Printf("%-12s detected %3d  redundant %d  satcalls %3d  tests %2d  conflicts %5d  specified %5.1f%%\n",
		name, rep.Detected, rep.Redundant, rep.SATCalls, len(rep.Tests), rep.Conflicts, spec)
	return rep
}

func main() {
	c := sateda.RippleAdder(4)
	fmt.Printf("circuit: 4-bit ripple-carry adder (%d gates, %d inputs)\n",
		c.NumGates(), len(c.Inputs))

	run("plain", c, sateda.ATPGOptions{Seed: 1})
	run("structural", c, sateda.ATPGOptions{Structural: true, Seed: 1})
	run("incremental", c, sateda.ATPGOptions{Incremental: true, Seed: 1})
	run("faultsim", c, sateda.ATPGOptions{FaultSim: true, Seed: 1})

	// Redundancy identification (§3): an untestable fault is an UNSAT
	// ATPG instance, and the logic it guards can be removed.
	r := sateda.NewCircuit()
	a := r.AddInput("a")
	b := r.AddInput("b")
	na := r.AddGate(sateda.Not, "na", a)
	dead := r.AddGate(sateda.And, "dead", a, na) // constant 0
	z := r.AddGate(sateda.Or, "z", b, dead)
	r.MarkOutput(z)

	redundant, _ := sateda.IdentifyRedundant(r, sateda.RedundOptions{})
	fmt.Printf("\nredundant faults in z = OR(b, AND(a, NOT a)): %v\n", redundant)
	opt, rep := sateda.RemoveRedundancy(r, sateda.RedundOptions{})
	fmt.Printf("redundancy removal: %d gates -> %d gates (%d faults removed)\n",
		rep.GatesBefore, rep.GatesAfter, len(rep.RemovedFaults))
	eq, err := sateda.CheckEquivalence(r, opt, sateda.CECOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("optimized circuit equivalent to original:", eq.Equivalent)
}
