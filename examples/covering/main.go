// Covering and prime implicants: solve a unate covering problem with
// both the SAT-based optimizer (linear SAT/UNSAT search on a totalizer
// bound) and classic branch and bound, then compute a minimum-size prime
// implicant of a CNF function, and generate constrained functional
// vectors from a word-level model.
package main

import (
	"fmt"

	sateda "repro"
	"repro/internal/cover"
	"repro/internal/funcvec"
)

func main() {
	// A classic covering matrix (rows must be covered by chosen columns).
	p := cover.NewUnate(6, [][]int{
		{0, 1},
		{1, 2},
		{2, 3},
		{3, 4},
		{4, 5},
		{0, 5},
	})
	satRes := sateda.SolveCoverSAT(p, cover.Options{})
	bbRes := sateda.SolveCoverBB(p, cover.Options{})
	fmt.Printf("covering: SAT optimum=%d (satcalls %d), B&B optimum=%d (nodes %d)\n",
		satRes.Cost, satRes.SATCalls, bbRes.Cost, bbRes.Nodes)
	fmt.Printf("SAT selection: %v\n", satRes.Select)

	// Weighted variant: making the "hub" columns expensive changes the
	// optimum structure.
	p.Weights = []int{5, 1, 5, 1, 5, 1}
	w := sateda.SolveCoverSAT(p, cover.Options{})
	fmt.Printf("weighted optimum=%d selection=%v\n", w.Cost, w.Select)

	// Minimum-size prime implicant of f = (x1∨x2)(¬x1∨x3)(x2∨¬x3).
	f := sateda.NewFormula(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, 3)
	f.AddDIMACS(2, -3)
	res := sateda.MinPrimeImplicant(f, cover.Options{})
	fmt.Printf("min prime implicant of %v: %v (optimal=%v)\n", f, res.Implicant, res.Optimal)
	fmt.Printf("  is prime: %v\n", res.Implicant.IsPrime(f))

	// Functional vector generation: 8 distinct vectors with
	// a + b == 12 and a < b over 4-bit words.
	m := sateda.NewFuncVecModel()
	a := m.Word("a", 4)
	b := m.Word("b", 4)
	m.RequireEqual(m.Add(a, b), m.Const(12, 5))
	m.RequireLess(a, b)
	vecs := m.Generate(8, funcvec.Options{Seed: 42})
	fmt.Printf("functional vectors (a+b=12, a<b): %d found\n", len(vecs))
	for _, v := range vecs {
		fmt.Printf("  a=%2d b=%2d\n", v["a"], v["b"])
	}
}
