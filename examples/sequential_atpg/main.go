// Sequential ATPG by time-frame expansion: a stuck-at fault inside a
// state machine needs a test SEQUENCE — the good and faulty machines
// start from the same reset state and must be driven until an output
// differs. Each depth is one more unrolled frame, solved incrementally.
package main

import (
	"fmt"

	sateda "repro"
)

func main() {
	// A 4-bit counter whose bad output fires at count 5. The next-state
	// logic bit d1 stuck at 0 silently corrupts counting: the machines
	// produce identical outputs until the good one reaches 5.
	q := sateda.NewCounter(4, 5)
	d1 := q.Comb.NodeByName("d1")
	flt := sateda.Fault{Node: d1, Pin: -1, StuckAt: false}

	res := sateda.TestSeqFault(q, flt, sateda.SeqOptions{MaxDepth: 12})
	fmt.Printf("fault %v: %v at depth %d (%d incremental SAT calls)\n",
		flt, res.Status, res.Depth, res.SATCalls)
	fmt.Printf("sequence replays on good/faulty pair: %v\n",
		sateda.VerifySequence(q, flt, res.Sequence))

	// The same fault cannot be seen in fewer frames.
	short := sateda.TestSeqFault(q, flt, sateda.SeqOptions{MaxDepth: res.Depth - 1})
	fmt.Printf("within %d frames: undetectable=%v (bounded claim only)\n",
		res.Depth-1, short.Undetectable)

	// A ring counter losing its token: detection happens as soon as the
	// one-hot invariant check sees the all-zero state.
	ring := sateda.NewRingOneHot(5)
	tok := sateda.Fault{Node: ring.Comb.NodeByName("d0"), Pin: -1, StuckAt: false}
	res2 := sateda.TestSeqFault(ring, tok, sateda.SeqOptions{MaxDepth: 10})
	fmt.Printf("\nring token-loss fault: %v at depth %d, replay %v\n",
		res2.Status, res2.Depth, sateda.VerifySequence(ring, tok, res2.Sequence))
}
