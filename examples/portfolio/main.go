// Portfolio: racing diversified solver configurations on goroutines
// with learned-clause sharing (§6 of the paper turned into multicore
// speedup). A hard random 3-SAT instance near the phase-transition
// ratio is solved sequentially and then by portfolios of increasing
// width; the diversified recipes' variance means some worker usually
// answers long before the base configuration would.
package main

import (
	"context"
	"fmt"
	"time"

	sateda "repro"
)

func main() {
	// A hard satisfiable instance at the 3-SAT phase transition where
	// the default configuration happens to struggle.
	f := sateda.Random3SATHard(220, 5)
	fmt.Printf("instance: %d variables, %d clauses\n", f.NumVars(), f.NumClauses())

	for _, workers := range []int{1, 2, 4} {
		start := time.Now()
		res := sateda.SolvePortfolio(context.Background(), f,
			sateda.PortfolioOptions{Workers: workers})
		fmt.Printf("workers=%d: %-13v in %8s  winner=%s(#%d) shared=%d\n",
			workers, res.Status, time.Since(start).Round(time.Millisecond),
			res.Recipe, res.Winner, res.SharedExported)
		for _, w := range res.Workers {
			fmt.Printf("  worker %d %-12s %-13v conflicts=%-6d imported=%-4d exported=%d\n",
				w.ID, w.Recipe, w.Status, w.Stats.Conflicts,
				w.Stats.Imported, w.Stats.Exported)
		}
	}

	// Deadlines compose with the portfolio: an impossible budget yields
	// UNKNOWN instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res := sateda.SolvePortfolio(ctx, sateda.Pigeonhole(12),
		sateda.PortfolioOptions{Workers: 2})
	fmt.Println("hopeless deadline:", res.Status)
}
