// Crosstalk noise analysis (paper §3, "crosstalk noise analysis"): an
// electrical estimator assumes every coupled aggressor can switch
// against a quiet victim simultaneously; SAT over a two-vector circuit
// model finds how many REALLY can, given the logic feeding the nets.
package main

import (
	"fmt"

	sateda "repro"
	"repro/internal/xtalk"
)

func main() {
	// A decoded bus: y_i = AND(en, d_i) with one-hot data generated from
	// two select bits — at most one y_i can be 1, so at most one can
	// rise at a time even though four are coupled to the victim.
	c := sateda.NewCircuit()
	vin := c.AddInput("vin")
	s0 := c.AddInput("s0")
	s1 := c.AddInput("s1")
	n0 := c.AddGate(sateda.Not, "n0", s0)
	n1 := c.AddGate(sateda.Not, "n1", s1)
	y := []sateda.NodeID{
		c.AddGate(sateda.And, "y0", n0, n1),
		c.AddGate(sateda.And, "y1", s0, n1),
		c.AddGate(sateda.And, "y2", n0, s1),
		c.AddGate(sateda.And, "y3", s0, s1),
	}
	victim := c.AddGate(sateda.Buf, "victim", vin)
	for _, g := range y {
		c.MarkOutput(g)
	}
	c.MarkOutput(victim)

	cp := sateda.Coupling{Victim: victim, Aggressors: y}
	res := sateda.MaxAlignedNoise(c, cp, xtalk.Options{})
	fmt.Printf("one-hot decoded aggressors:\n")
	fmt.Printf("  pessimistic (no logic):   %d aligned aggressors\n", res.Pessimistic)
	fmt.Printf("  true (SAT, logic-aware):  %d aligned aggressors (optimal=%v)\n",
		res.MaxNoise, res.Optimal)
	fmt.Printf("  witness verified by simulation: %v\n", xtalk.VerifyWitness(c, cp, res))

	// Same neighbourhood but driven by independent inputs: all four can
	// align, so the pessimistic bound is tight.
	d := sateda.NewCircuit()
	dvin := d.AddInput("vin")
	var ag []sateda.NodeID
	for i := 0; i < 4; i++ {
		in := d.AddInput(fmt.Sprintf("x%d", i))
		ag = append(ag, d.AddGate(sateda.Buf, fmt.Sprintf("a%d", i), in))
	}
	dv := d.AddGate(sateda.Buf, "victim", dvin)
	for _, g := range ag {
		d.MarkOutput(g)
	}
	d.MarkOutput(dv)
	cp2 := sateda.Coupling{Victim: dv, Aggressors: ag}
	res2 := sateda.MaxAlignedNoise(d, cp2, xtalk.Options{})
	fmt.Printf("\nindependent aggressors:\n")
	fmt.Printf("  pessimistic: %d   true: %d (bound is tight here)\n",
		res2.Pessimistic, res2.MaxNoise)
}
