// Quickstart: the paper's Figure 1 workflow — build a small circuit,
// derive its CNF consistency formula (Table 1), attach a property
// objective, and solve. Demonstrates both a satisfiable objective (with
// the witness input pattern) and an unsatisfiable one (a proof that the
// property value is unachievable).
package main

import (
	"fmt"

	sateda "repro"
)

func main() {
	// The circuit of Figure 1: w1 = AND(a, b); x = NOT(w1); z = OR(x, b).
	c := sateda.NewCircuit()
	a := c.AddInput("a")
	b := c.AddInput("b")
	w1 := c.AddGate(sateda.And, "w1", a, b)
	x := c.AddGate(sateda.Not, "x", w1)
	z := c.AddGate(sateda.Or, "z", x, b)
	c.MarkOutput(z)

	// Property z = 1: build CNF = circuit consistency ∧ (z).
	f, enc := sateda.EncodeProperty(c, z, true)
	fmt.Printf("CNF: %d variables, %d clauses\n", f.NumVars(), f.NumClauses())

	s := sateda.NewSolver(f, sateda.SolverOptions{})
	st := s.Solve()
	fmt.Println("objective z=1:", st)
	if st == sateda.Sat {
		m := s.Model()
		fmt.Printf("  witness: a=%v b=%v (w1=%v x=%v)\n",
			m.Value(enc.Var(a)), m.Value(enc.Var(b)),
			m.Value(enc.Var(w1)), m.Value(enc.Var(x)))
	}

	// Property z = 0 is impossible for this circuit: z = NAND(a,b) OR b
	// is a tautology of (a, b).
	f0, _ := sateda.EncodeProperty(c, z, false)
	s0 := sateda.NewSolver(f0, sateda.SolverOptions{})
	fmt.Println("objective z=0:", s0.Solve(), "(z is constant 1: the objective has no solution)")

	// The same check through the full pipeline of Figure 2 with
	// preprocessing and recursive learning enabled.
	ans := sateda.SolvePipeline(f, sateda.PipelineOptions{
		EquivalencyReasoning: true,
		RecursiveLearning:    1,
	})
	fmt.Println("pipeline verdict:", ans.Status)
	if ans.Pre != nil {
		fmt.Printf("  preprocessing: %d units, %d subsumed, %d vars substituted\n",
			ans.Pre.UnitsFixed, ans.Pre.ClausesSubsumed, ans.Pre.VarsSubstituted)
	}
}
