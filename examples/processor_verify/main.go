// Processor verification via equality with uninterpreted functions
// (paper §3, [Velev & Bryant]): abstract the ALU as an uninterpreted
// function, model the pipeline's forwarding multiplexer with term-level
// ITE, and check implementation = specification as an EUF validity
// query reduced to SAT.
package main

import (
	"fmt"

	"repro/internal/euf"
)

func main() {
	b := euf.NewBuilder()

	// Architectural state and instruction fields.
	op := b.Var("op")
	rs1 := b.Var("rs1")
	rdWB := b.Var("rdWB")     // destination register of the instr in WB
	regVal := b.Var("regVal") // register-file value of rs1
	wbVal := b.Var("wbVal")   // result sitting in the write-back stage
	src2 := b.Var("src2")

	// Hazard detection: the source register matches the WB destination.
	hazard := euf.Eq(rs1, rdWB)

	// Implementation: operand comes through the forwarding mux.
	operand := b.Ite(hazard, wbVal, regVal)
	resultImpl := b.Apply("alu", op, operand, src2)

	// Specification: ISA-level semantics read the architectural value.
	resultSpec := b.Apply("alu", op, regVal, src2)

	// Forwarding correctness side condition: when forwarding fires, the
	// forwarded value is the one the register file is about to hold.
	side := euf.Implies(hazard, euf.Eq(wbVal, regVal))

	ok, res := b.Valid(euf.Implies(side, euf.Eq(resultImpl, resultSpec)), euf.Options{})
	fmt.Printf("pipeline = spec (with forwarding invariant): %v\n", ok)
	fmt.Printf("  encoding: %d terms, %d SAT variables, %d clauses\n",
		b.NumTerms(), res.Vars, res.Clauses)

	// Drop the invariant: the check must fail — SAT finds an
	// interpretation where the forwarded value is wrong.
	ok2, res2 := b.Valid(euf.Eq(resultImpl, resultSpec), euf.Options{})
	fmt.Printf("pipeline = spec (no invariant):              %v\n", ok2)
	fmt.Printf("  counterexample interpretation equates %d term pairs\n", len(res2.EqualPairs))

	// A classic EUF lemma along the way: f(f(a))=a ∧ f(f(f(a)))=a ⇒ f(a)=a.
	b2 := euf.NewBuilder()
	a := b2.Var("a")
	fa := b2.Apply("f", a)
	ffa := b2.Apply("f", fa)
	fffa := b2.Apply("f", ffa)
	lemma := euf.Implies(euf.And(euf.Eq(ffa, a), euf.Eq(fffa, a)), euf.Eq(fa, a))
	ok3, _ := b2.Valid(lemma, euf.Options{})
	fmt.Printf("f²(a)=a ∧ f³(a)=a ⇒ f(a)=a:                 %v\n", ok3)
}
