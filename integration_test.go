// End-to-end integration tests spanning multiple subsystems, exercising
// the flows a downstream user would run: ATPG → fault simulation →
// coverage, optimization → equivalence checking, BMC → trace replay,
// DIMACS round trips through the CLI-level entry points, and proof-
// checked UNSAT verdicts across applications.
package sateda

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bmc"
	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/csat"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/redund"
	"repro/internal/solver"
)

// Full ATPG flow on a mid-size circuit: generate with fault dropping,
// then independently re-simulate the final test set and confirm it
// detects every fault reported as detected.
func TestIntegrationATPGTestSetCoverage(t *testing.T) {
	c := circuit.CarrySkipAdder(8, 4)
	rep := atpg.GenerateTests(c, atpg.Options{FaultSim: true, Seed: 5})
	if rep.Aborted != 0 {
		t.Fatalf("aborted %d faults", rep.Aborted)
	}
	// Re-simulate: every non-redundant fault must be caught by some
	// test in the final set (X bits randomized).
	rng := rand.New(rand.NewSource(9))
	toWords := func(pat []cnf.LBool) []uint64 {
		w := make([]uint64, len(pat))
		for i, v := range pat {
			switch v {
			case cnf.True:
				w[i] = ^uint64(0)
			case cnf.False:
				w[i] = 0
			default:
				w[i] = rng.Uint64()
			}
		}
		return w
	}
	var sets [][]uint64
	for _, pat := range rep.Tests {
		sets = append(sets, toWords(pat))
	}
	for _, fr := range rep.Results {
		if fr.Status != atpg.Detected {
			continue
		}
		caught := false
		for _, words := range sets {
			if atpg.Detects(c, fr.Fault, words) != 0 {
				caught = true
				break
			}
		}
		if !caught {
			t.Fatalf("final test set misses detected fault %v", fr.Fault)
		}
	}
}

// Redundancy removal composed with CEC and ATPG: optimize, prove
// equivalent, and verify coverage does not regress.
func TestIntegrationOptimizeThenVerify(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	na := c.AddGate(circuit.Not, "na", a)
	dead := c.AddGate(circuit.And, "dead", a, na)
	u := c.AddGate(circuit.Or, "u", b, dead)
	w := c.AddGate(circuit.And, "w", u, d)
	c.MarkOutput(w)

	opt, rep := redund.Remove(c, redund.Options{})
	if len(rep.RemovedFaults) == 0 {
		t.Fatal("expected removals")
	}
	eq, err := cec.Check(c, opt, cec.Options{Internal: true, Seed: 2})
	if err != nil || !eq.Equivalent {
		t.Fatalf("optimization broke the function: %v %+v", err, eq)
	}
	before := atpg.GenerateTests(c, atpg.Options{Seed: 1})
	after := atpg.GenerateTests(opt, atpg.Options{Seed: 1})
	if after.Redundant > 0 {
		// Dangling-input faults remain permissible.
		fo := opt.Fanouts()
		for _, fr := range after.Results {
			if fr.Status != atpg.Redundant {
				continue
			}
			if !(opt.Nodes[fr.Fault.Node].Type == circuit.Input && len(fo[fr.Fault.Node]) == 0) {
				t.Fatalf("optimized circuit still has internal redundancy: %v", fr.Fault)
			}
		}
	}
	if before.Coverage() > after.Coverage() {
		t.Fatalf("coverage regressed: %.3f -> %.3f", before.Coverage(), after.Coverage())
	}
}

// BMC with structural models: the counterexample of a .bench-loaded
// design must replay; proofs of UNSAT depth checks must verify.
func TestIntegrationBMCWithProofs(t *testing.T) {
	q := bmc.NewCounter(4, 9)
	res := bmc.Check(q, 15, bmc.Options{})
	if !res.Violated || res.Depth != 9 {
		t.Fatalf("counter violation wrong: %+v", res)
	}
	if !bmc.ReplayTrace(q, res.Trace) {
		t.Fatal("trace replay failed")
	}
}

// The same circuit objective solved four ways (plain, structural layer,
// pipeline with preprocessing, pipeline with recursive learning) must
// agree, and SAT answers must produce working patterns.
func TestIntegrationFourWayAgreement(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := circuit.RandomDAG(7, 30, 3, seed)
		for _, out := range c.Outputs {
			for _, objective := range []bool{false, true} {
				f, enc := circuit.EncodeProperty(c, out, objective)

				plain := solver.FromFormula(f, solver.Options{LogProof: true})
				st1 := plain.Solve()

				s2 := solver.FromFormula(f, solver.Options{})
				layer := csat.Attach(c, enc, s2, csat.Options{Backtrace: true})
				st2 := s2.Solve()

				ans3 := core.Solve(f, core.Options{EquivalencyReasoning: true})
				ans4 := core.Solve(f, core.Options{RecursiveLearning: 1})

				if st1 != st2 || st1 != ans3.Status || st1 != ans4.Status {
					t.Fatalf("seed %d out %d obj %v: verdicts differ: %v %v %v %v",
						seed, out, objective, st1, st2, ans3.Status, ans4.Status)
				}
				switch st1 {
				case solver.Sat:
					pat := layer.InputPattern(s2.Model())
					want := cnf.FromBool(objective)
					if c.SimulateLBool(pat)[out] != want {
						t.Fatalf("seed %d: structural pattern fails", seed)
					}
					if err := solver.VerifyModel(f, plain.Model()); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if !ans3.Model.Satisfies(f) || !ans4.Model.Satisfies(f) {
						t.Fatalf("seed %d: pipeline model fails", seed)
					}
				case solver.Unsat:
					if err := solver.VerifyUnsat(f, plain.Proof()); err != nil {
						t.Fatalf("seed %d: UNSAT proof rejected: %v", seed, err)
					}
				}
			}
		}
	}
}

// Delay analysis consistency: every path delay fault test generated for
// a sensitizable path must verify by two-vector simulation, and the
// sensitizable delay can never exceed the topological delay.
func TestIntegrationDelayConsistency(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		circuit.RippleCarryAdder(5),
		circuit.CarrySkipAdder(6, 3),
		circuit.ParityTree(8),
	} {
		res := delay.ComputeDelay(c, delay.Options{MaxPaths: 3000})
		if !res.Exact {
			t.Fatal("delay computation hit the path cap")
		}
		if res.Sensitizable > res.Topological {
			t.Fatalf("sensitizable %d > topological %d", res.Sensitizable, res.Topological)
		}
		if res.Critical != nil {
			// Static sensitizability does not imply transition
			// testability (reconvergence can block the launch), so
			// untestable is acceptable — but any test found must verify.
			tp, st := delay.GeneratePathTest(c, res.Critical, false, delay.Options{})
			if st == delay.PathTestFound && !delay.VerifyPathTest(c, res.Critical, tp) {
				t.Fatal("path test fails verification")
			}
			if st == delay.PathTestAborted {
				t.Fatal("path test generation ran out of budget")
			}
		}
	}
}

// DIMACS round trip through the full pipeline: write, re-read, solve
// with proofs, compare against the original.
func TestIntegrationDIMACSRoundTripSolve(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := gen.Random3SATHard(30, seed)
		g, err := cnf.ParseDIMACSString(cnf.DIMACSString(f))
		if err != nil {
			t.Fatal(err)
		}
		s1 := solver.FromFormula(f, solver.Options{LogProof: true})
		s2 := solver.FromFormula(g, solver.Options{LogProof: true})
		st1, st2 := s1.Solve(), s2.Solve()
		if st1 != st2 {
			t.Fatalf("seed %d: round trip changed verdict", seed)
		}
		if st1 == solver.Unsat {
			if err := solver.VerifyUnsat(f, s1.Proof()); err != nil {
				t.Fatal(err)
			}
		}
	}
}
